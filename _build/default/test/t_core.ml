(* Tests for halo_core: the score and merge-benefit functions (Figures 7
   and 8), the grouping algorithm (Figure 6), selector construction
   (Figure 10), the rewrite plan, the specialised group allocator (§4.4),
   the alternative clusterers, and the end-to-end pipeline. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

(* Build a graph from (x, y, weight) triples and (node, accesses) pairs. *)
let mk_graph ?(accesses = []) edges =
  let g = Affinity_graph.create () in
  List.iter
    (fun (x, y, w) ->
      for _ = 1 to w do
        Affinity_graph.add_affinity g x y
      done)
    edges;
  List.iter
    (fun (x, n) ->
      for _ = 1 to n do
        Affinity_graph.add_access g x
      done)
    accesses;
  g

(* ---------------- Score (Figure 7) ---------------- *)

let score_pair () =
  (* Two nodes, one edge of weight 10: s = 10 / (0 + 1) = 10. *)
  let g = mk_graph [ (1, 2, 10) ] in
  checkf "pair" 10.0 (Score.score g [ 1; 2 ])

let score_singleton_no_loop () =
  let g = mk_graph [ (1, 2, 10) ] in
  checkf "no loop, no density" 0.0 (Score.score g [ 1 ])

let score_singleton_with_loop () =
  (* Loop weight 6: s = 6 / (1 + 0) = 6. *)
  let g = mk_graph [ (1, 1, 6) ] in
  checkf "loop only" 6.0 (Score.score g [ 1 ])

let score_loops_in_denominator () =
  (* Nodes 1,2: edge 8, loop on 1 of 4: s = (8+4) / (1 + 1) = 6. *)
  let g = mk_graph [ (1, 2, 8); (1, 1, 4) ] in
  checkf "loops counted" 6.0 (Score.score g [ 1; 2 ])

let score_triangle () =
  (* Triangle, each edge 6: s = 18 / 3 = 6. *)
  let g = mk_graph [ (1, 2, 6); (2, 3, 6); (1, 3, 6) ] in
  checkf "triangle" 6.0 (Score.score g [ 1; 2; 3 ])

let score_ignores_outside_edges () =
  let g = mk_graph [ (1, 2, 6); (2, 3, 100) ] in
  checkf "edge to 3 ignored" 6.0 (Score.score g [ 1; 2 ])

(* ---------------- Merge benefit (Figure 8) ---------------- *)

let merge_benefit_positive_for_clique () =
  (* Group {1,2} with strong edge; candidate 3 strongly tied to both. *)
  let g = mk_graph [ (1, 2, 10); (1, 3, 10); (2, 3, 10) ] in
  checkb "beneficial" true (Score.merge_benefit g ~tol:0.05 [ 1; 2 ] 3 > 0.0)

let merge_benefit_negative_for_stranger () =
  (* Candidate 3 weakly connected: union density collapses. *)
  let g = mk_graph [ (1, 2, 30); (2, 3, 1) ] in
  checkb "not beneficial" true (Score.merge_benefit g ~tol:0.05 [ 1; 2 ] 3 <= 0.0)

let merge_benefit_tolerance_allows_slack () =
  (* Union score fractionally below the max: rejected at tol 0, accepted
     at 5%. *)
  let g = mk_graph [ (1, 2, 100); (1, 3, 51); (2, 3, 51) ] in
  (* s{1,2} = 100; s{1,2,3} = 202/3 = 67.3 -> worse, never merged *)
  checkb "strict rejects" true (Score.merge_benefit g ~tol:0.0 [ 1; 2 ] 3 <= 0.0);
  let g2 = mk_graph [ (1, 2, 10); (1, 3, 10); (2, 3, 9) ] in
  (* s{1,2}=10, union = 29/3 = 9.67: within 5% tolerance *)
  checkb "tolerant accepts" true (Score.merge_benefit g2 ~tol:0.05 [ 1; 2 ] 3 > 0.0);
  checkb "strict would reject" true (Score.merge_benefit g2 ~tol:0.0 [ 1; 2 ] 3 <= 0.0)

let merge_benefit_rejects_member () =
  let g = mk_graph [ (1, 2, 1) ] in
  checkb "raises" true
    (try
       ignore (Score.merge_benefit g ~tol:0.05 [ 1; 2 ] 2);
       false
     with Invalid_argument _ -> true)

(* ---------------- Grouping (Figure 6) ---------------- *)

let grouping_params = { Grouping.default_params with Grouping.gthresh = 0.0; min_edge_weight = 1 }

let grouping_two_cliques () =
  let g =
    mk_graph
      ~accesses:[ (1, 100); (2, 90); (3, 80); (4, 50); (5, 40); (6, 30) ]
      [ (1, 2, 20); (2, 3, 20); (1, 3, 20); (4, 5, 10); (5, 6, 10); (4, 6, 10) ]
  in
  let r = Grouping.group g grouping_params in
  checki "two groups" 2 (Array.length r.Grouping.groups);
  let sets = Array.map (fun m -> List.sort compare m) r.Grouping.groups in
  checkb "cliques recovered" true
    (Array.exists (( = ) [ 1; 2; 3 ]) sets && Array.exists (( = ) [ 4; 5; 6 ]) sets);
  checkb "popularity order" true
    (r.Grouping.group_accesses.(0) >= r.Grouping.group_accesses.(1))

let grouping_seed_is_hotter_endpoint () =
  (* Strongest edge (1,2); node 2 hotter: group grows around 2. With no
     other positive merges, the group is a singleton {2}... which has no
     weight; use gthresh 0 so it is kept, then check membership. *)
  let g = mk_graph ~accesses:[ (1, 5); (2, 50) ] [ (1, 2, 10) ] in
  let r = Grouping.group g grouping_params in
  checkb "2 grouped first" true
    (Array.length r.Grouping.groups > 0 && List.mem 2 r.Grouping.groups.(0))

let grouping_disjoint () =
  let g =
    mk_graph
      ~accesses:[ (1, 10); (2, 10); (3, 10); (4, 10) ]
      [ (1, 2, 5); (2, 3, 5); (3, 4, 5) ]
  in
  let r = Grouping.group g grouping_params in
  let all = Array.to_list r.Grouping.groups |> List.concat in
  checki "no node twice" (List.length all) (List.length (List.sort_uniq compare all))

let grouping_max_members () =
  let nodes = List.init 12 (fun k -> k) in
  let edges =
    List.concat_map (fun a -> List.filter_map (fun b -> if b > a then Some (a, b, 10) else None) nodes) nodes
  in
  let g = mk_graph ~accesses:(List.map (fun n -> (n, 10)) nodes) edges in
  let r =
    Grouping.group g { grouping_params with Grouping.max_group_members = 4 }
  in
  Array.iter
    (fun m -> checkb "capped" true (List.length m <= 4))
    r.Grouping.groups

let grouping_gthresh_drops_but_consumes () =
  (* One strong pair and one weak pair; gthresh keeps only the strong
     group, and the weak pair's nodes are consumed (ungrouped, but not
     re-grouped). *)
  let g =
    mk_graph
      ~accesses:[ (1, 100); (2, 100); (3, 1); (4, 1) ]
      [ (1, 2, 100); (3, 4, 1) ]
  in
  let r =
    Grouping.group g { grouping_params with Grouping.gthresh = 0.1 }
  in
  checki "one group survives" 1 (Array.length r.Grouping.groups);
  checkb "weak nodes ungrouped" true
    (List.mem 3 r.Grouping.ungrouped && List.mem 4 r.Grouping.ungrouped)

let grouping_min_edge_weight_filters () =
  let g = mk_graph ~accesses:[ (1, 10); (2, 10) ] [ (1, 2, 2) ] in
  let r = Grouping.group g { grouping_params with Grouping.min_edge_weight = 5 } in
  checki "nothing groupable" 0 (Array.length r.Grouping.groups)

let grouping_max_groups_cap () =
  let g =
    mk_graph
      ~accesses:[ (1, 9); (2, 9); (3, 5); (4, 5); (5, 1); (6, 1) ]
      [ (1, 2, 10); (3, 4, 10); (5, 6, 10) ]
  in
  let r =
    Grouping.group g { grouping_params with Grouping.max_groups = Some 2 }
  in
  checki "capped at 2" 2 (Array.length r.Grouping.groups);
  (* the most popular groups are kept *)
  checkb "hottest kept" true (List.mem 1 r.Grouping.groups.(0))

let grouping_group_of () =
  let g = mk_graph ~accesses:[ (1, 10); (2, 10) ] [ (1, 2, 10) ] in
  let r = Grouping.group g grouping_params in
  checkb "member found" true (Grouping.group_of r 1 = Some 0);
  checkb "absent none" true (Grouping.group_of r 99 = None)

(* ---------------- Identify (Figure 10) ---------------- *)

(* Contexts are arrays of sites; grouping indices refer to context ids in
   the table. *)
let mk_contexts chains =
  let t = Context.create () in
  let ids = List.map (fun c -> Context.intern t (Array.of_list c)) chains in
  (t, ids)

let mk_grouping groups =
  {
    Grouping.groups = Array.of_list groups;
    group_accesses = Array.of_list (List.mapi (fun i _ -> 100 - i) groups);
    group_weights = Array.of_list (List.map (fun _ -> 1) groups);
    ungrouped = [];
  }

let identify_selector_accepts_members () =
  (* Group of ctx0 {1;2;9} and ctx1 {1;3;9}; conflicting ungrouped ctx2
     {1;9}. *)
  let contexts, ids = mk_contexts [ [ 1; 2; 9 ]; [ 1; 3; 9 ]; [ 1; 9 ] ] in
  let c0 = List.nth ids 0 and c1 = List.nth ids 1 and _c2 = List.nth ids 2 in
  let grouping = mk_grouping [ [ c0; c1 ] ] in
  let sels = Identify.build ~contexts ~grouping in
  checki "one selector" 1 (List.length sels);
  (* Soundness: both member chains are accepted. *)
  checkb "accepts member 0" true
    (Identify.classify_chain sels [| 1; 2; 9 |] = Some 0);
  checkb "accepts member 1" true
    (Identify.classify_chain sels [| 1; 3; 9 |] = Some 0);
  (* The conflicting chain {1;9} must be excluded: the selector needs
     sites 2 or 3. *)
  checkb "rejects conflicting" true (Identify.classify_chain sels [| 1; 9 |] = None)

let identify_minimises_sites () =
  (* No conflicts at all: a single site (the anchor) suffices per member. *)
  let contexts, ids = mk_contexts [ [ 1; 2; 3 ] ] in
  let grouping = mk_grouping [ ids ] in
  let sels = Identify.build ~contexts ~grouping in
  let sites = Identify.monitored_sites sels in
  checki "one site monitored" 1 (List.length sites)

let identify_popularity_order_permits_earlier_overlap () =
  (* Two groups; the less popular one's selector may match the more
     popular one's chains — classify_chain must return the more popular
     group for its own chain. *)
  let contexts, ids = mk_contexts [ [ 1; 2 ]; [ 1; 2; 3 ] ] in
  let c0 = List.nth ids 0 and c1 = List.nth ids 1 in
  let grouping = mk_grouping [ [ c0 ]; [ c1 ] ] in
  let sels = Identify.build ~contexts ~grouping in
  checkb "popular group wins its own chain" true
    (Identify.classify_chain sels [| 1; 2 |] = Some 0);
  checkb "second group still identified" true
    (Identify.classify_chain sels [| 1; 2; 3 |] <> None)

let identify_conflict_counting_reduces () =
  (* Member {10;20;30}; many conflicting chains containing 10, none
     containing 20: the algorithm should pick 20-ish sites, not 10. *)
  let contexts, ids =
    mk_contexts [ [ 10; 20; 30 ]; [ 10; 30 ]; [ 10; 30; 40 ]; [ 10; 50; 30 ] ]
  in
  let member = List.hd ids in
  let grouping = mk_grouping [ [ member ] ] in
  let sels = Identify.build ~contexts ~grouping in
  let sites = Identify.monitored_sites sels in
  checkb "20 chosen" true (List.mem 20 sites);
  checkb "conflicts fully resolved" true
    (List.for_all
       (fun chain -> Identify.classify_chain sels (Array.of_list chain) = None)
       [ [ 10; 30 ]; [ 10; 30; 40 ]; [ 10; 50; 30 ] ])

let identify_unresolvable_conflict_tolerated () =
  (* A conflicting chain that contains every member site cannot be
     excluded; construction must terminate and still accept the member. *)
  let contexts, ids = mk_contexts [ [ 1; 2 ]; [ 1; 2; 3 ] ] in
  let member = List.hd ids in
  ignore (List.nth ids 1);
  let grouping = mk_grouping [ [ member ] ] in
  let sels = Identify.build ~contexts ~grouping in
  checkb "member accepted" true (Identify.classify_chain sels [| 1; 2 |] = Some 0)

(* ---------------- Rewrite ---------------- *)

let rewrite_bits_assigned () =
  let sels =
    [ { Identify.group = 0; disjuncts = [ [ 100; 200 ]; [ 300 ] ] };
      { Identify.group = 1; disjuncts = [ [ 200; 400 ] ] } ]
  in
  let plan = Rewrite.plan sels in
  checki "four distinct sites" 4 plan.Rewrite.nbits;
  checki "four patches" 4 (List.length plan.Rewrite.patches);
  (* site_of_bit inverts the patch map *)
  List.iter
    (fun (site, bit) -> checki "inverse" site (Rewrite.site_of_bit plan bit))
    plan.Rewrite.patches

let rewrite_classify_first_match () =
  let sels =
    [ { Identify.group = 0; disjuncts = [ [ 100 ] ] };
      { Identify.group = 1; disjuncts = [ [ 100; 200 ] ] } ]
  in
  let plan = Rewrite.plan sels in
  let state = Bitset.create plan.Rewrite.nbits in
  List.iter (fun (_, bit) -> Bitset.set state bit) plan.Rewrite.patches;
  (* both selectors match; the first (most popular) wins *)
  checkb "first match" true (Rewrite.classify plan state = Some 0);
  Bitset.clear_all state;
  checkb "no match" true (Rewrite.classify plan state = None)

let rewrite_conjunction_requires_all () =
  let sels = [ { Identify.group = 0; disjuncts = [ [ 100; 200 ] ] } ] in
  let plan = Rewrite.plan sels in
  let state = Bitset.create plan.Rewrite.nbits in
  let bit_of site = List.assoc site plan.Rewrite.patches in
  Bitset.set state (bit_of 100);
  checkb "half a conjunction is no match" true (Rewrite.classify plan state = None);
  Bitset.set state (bit_of 200);
  checkb "full conjunction matches" true (Rewrite.classify plan state = Some 0)

let rewrite_too_many_sites_rejected () =
  let sels =
    [ { Identify.group = 0; disjuncts = [ List.init 65 (fun k -> k * 16) ] } ]
  in
  checkb "raises" true
    (try
       ignore (Rewrite.plan sels);
       false
     with Invalid_argument _ -> true)

(* ---------------- Group_alloc (§4.4) ---------------- *)

let mk_galloc ?config ?(classify = fun ~size:_ -> Some 0) () =
  let vmem = Vmem.create () in
  let fallback = Jemalloc_sim.create vmem in
  let g = Group_alloc.create ?config ~classify ~fallback vmem in
  (g, Group_alloc.iface g, fallback)

let galloc_bump_contiguity () =
  let _, iface, _ = mk_galloc () in
  let a = iface.Alloc_iface.malloc 24 in
  let b = iface.Alloc_iface.malloc 24 in
  let c = iface.Alloc_iface.malloc 100 in
  checki "8-aligned bump" 24 (b - a);
  checki "contiguous" 24 (c - b);
  ignore c

let galloc_groups_separated () =
  let flip = ref 0 in
  let classify ~size:_ =
    flip := 1 - !flip;
    Some !flip
  in
  let _, iface, _ = mk_galloc ~classify () in
  let a = iface.Alloc_iface.malloc 24 in
  let b = iface.Alloc_iface.malloc 24 in
  let a2 = iface.Alloc_iface.malloc 24 in
  (* groups live in distinct chunks *)
  let csize = Group_alloc.default_config.Group_alloc.chunk_size in
  checkb "different chunks" true (a / csize <> b / csize);
  checki "same-group contiguity" 24 (a2 - a)

let galloc_forwards_ungrouped () =
  let g, iface, fallback = mk_galloc ~classify:(fun ~size:_ -> None) () in
  let a = iface.Alloc_iface.malloc 24 in
  checkb "served by fallback" true
    (Option.is_some (fallback.Alloc_iface.usable_size a));
  checki "forward counted" 1 (iface.Alloc_iface.stats ()).Alloc_iface.forwarded;
  checki "no grouped mallocs" 0 (Group_alloc.grouped_mallocs g);
  iface.Alloc_iface.free a;
  checki "fallback freed" 0 (fallback.Alloc_iface.stats ()).Alloc_iface.live_bytes

let galloc_forwards_large () =
  let g, iface, _ = mk_galloc () in
  (* over the max grouped size: forwarded even though classify says 0 *)
  ignore (iface.Alloc_iface.malloc 8192 : Addr.t);
  checki "not grouped" 0 (Group_alloc.grouped_mallocs g)

let galloc_chunk_header_masking () =
  (* A region's chunk is found by masking: freeing decrements the right
     chunk's live count, and an emptied non-current chunk is recycled. *)
  let config = { Group_alloc.default_config with Group_alloc.chunk_size = 4096 } in
  let _, iface, _ = mk_galloc ~config () in
  (* fill most of chunk 1, then spill to chunk 2 *)
  let first = iface.Alloc_iface.malloc 2000 in
  let second = iface.Alloc_iface.malloc 2000 in
  let third = iface.Alloc_iface.malloc 2000 in
  checkb "spilled to a new chunk" true (third / 4096 <> first / 4096);
  ignore second;
  iface.Alloc_iface.free first;
  iface.Alloc_iface.free second;
  (* chunk 1 is now empty and not current: recycled as spare; the next
     over-spill reuses it *)
  let fourth = iface.Alloc_iface.malloc 2000 in
  let fifth = iface.Alloc_iface.malloc 2000 in
  ignore fourth;
  checki "spare chunk reused" (first / 4096) (fifth / 4096)

let galloc_current_chunk_rewinds () =
  let _, iface, _ = mk_galloc () in
  let a = iface.Alloc_iface.malloc 64 in
  iface.Alloc_iface.free a;
  (* the current chunk drained: bump rewinds, the address is reused *)
  let b = iface.Alloc_iface.malloc 64 in
  checki "in-place rewind" a b

let galloc_spare_policy_purges () =
  let vmem = Vmem.create () in
  let fallback = Jemalloc_sim.create vmem in
  let config =
    {
      Group_alloc.default_config with
      Group_alloc.chunk_size = 4096;
      spare_policy = Group_alloc.Keep_spare 0;
    }
  in
  let next = ref 0 in
  let classify ~size:_ = Some !next in
  let g = Group_alloc.create ~config ~classify ~fallback vmem in
  let iface = Group_alloc.iface g in
  let a = iface.Alloc_iface.malloc 64 in
  (* switch group so chunk of group 0 is no longer current *)
  next := 1;
  let _b = iface.Alloc_iface.malloc 64 in
  next := 0;
  iface.Alloc_iface.free a;
  (* group 0's chunk emptied; with 0 spares it is purged... but it is
     still current for group 0, so it rewinds instead. Force a non-current
     empty: allocate from group 0 into a fresh chunk first. *)
  checkb "allocator still functional" true (iface.Alloc_iface.malloc 64 <> Addr.null)

let galloc_frag_stats () =
  let config = { Group_alloc.default_config with Group_alloc.chunk_size = 4096 } in
  let g, iface, _ = mk_galloc ~config () in
  let keep = iface.Alloc_iface.malloc 64 in
  for _ = 1 to 10 do
    let a = iface.Alloc_iface.malloc 64 in
    iface.Alloc_iface.free a
  done;
  ignore keep;
  let f = Group_alloc.frag_stats g in
  checkb "peak resident positive" true (f.Group_alloc.peak_resident > 0);
  checkb "frag bytes = peak - live" true
    (f.Group_alloc.frag_bytes = f.Group_alloc.peak_resident - f.Group_alloc.live_at_peak);
  checkb "pct consistent" true
    (f.Group_alloc.frag_pct >= 0.0 && f.Group_alloc.frag_pct <= 1.0)

let galloc_realloc_within_group () =
  let _, iface, _ = mk_galloc () in
  let a = iface.Alloc_iface.malloc 64 in
  checki "shrink in place" a (iface.Alloc_iface.realloc a 32);
  let b = iface.Alloc_iface.realloc a 128 in
  checkb "grow moves" true (b <> a)

let galloc_realloc_migrates_from_fallback () =
  (* Start ungrouped (classify None), then grouped: realloc migrates the
     block into the pool. *)
  let grouped = ref false in
  let classify ~size:_ = if !grouped then Some 0 else None in
  let g, iface, fallback = mk_galloc ~classify () in
  let a = iface.Alloc_iface.malloc 64 in
  grouped := true;
  let b = iface.Alloc_iface.realloc a 80 in
  checkb "now grouped" true (Group_alloc.grouped_mallocs g = 1);
  checkb "fallback block freed" true
    (fallback.Alloc_iface.usable_size a = None || a = b)

let galloc_validates_config () =
  let vmem = Vmem.create () in
  let fallback = Jemalloc_sim.create vmem in
  checkb "non-pow2 chunk rejected" true
    (try
       ignore
         (Group_alloc.create
            ~config:{ Group_alloc.default_config with Group_alloc.chunk_size = 3000 }
            ~classify:(fun ~size:_ -> None)
            ~fallback vmem);
       false
     with Invalid_argument _ -> true)

(* ---------------- Clustering alternatives ---------------- *)

let clustering_min_cut () =
  (* Two triangles joined by a single light edge: min cut = that edge. *)
  let g =
    mk_graph
      [ (1, 2, 5); (2, 3, 5); (1, 3, 5); (4, 5, 5); (5, 6, 5); (4, 6, 5); (3, 4, 1) ]
  in
  let cut, side = Clustering.min_cut g [ 1; 2; 3; 4; 5; 6 ] in
  checki "cut weight" 1 cut;
  let side = List.sort compare side in
  checkb "one triangle on a side" true (side = [ 1; 2; 3 ] || side = [ 4; 5; 6 ])

let clustering_modularity_two_cliques () =
  let g =
    mk_graph
      [ (1, 2, 10); (2, 3, 10); (1, 3, 10); (4, 5, 10); (5, 6, 10); (4, 6, 10); (3, 4, 1) ]
  in
  let parts = Clustering.modularity g in
  let sets = List.map (List.sort compare) parts |> List.sort compare in
  checkb "cliques separated" true
    (List.mem [ 1; 2; 3 ] sets && List.mem [ 4; 5; 6 ] sets)

let clustering_hcs_splits () =
  let g =
    mk_graph
      [ (1, 2, 10); (2, 3, 10); (1, 3, 10); (4, 5, 10); (5, 6, 10); (4, 6, 10); (3, 4, 1) ]
  in
  let parts = Clustering.hcs g in
  let sets = List.map (List.sort compare) parts |> List.sort compare in
  checkb "triangles are highly connected" true
    (List.mem [ 1; 2; 3 ] sets && List.mem [ 4; 5; 6 ] sets)

let clustering_threshold_components () =
  let g = mk_graph [ (1, 2, 10); (2, 3, 1); (4, 5, 10) ] in
  let parts = Clustering.threshold_components ~min_weight:5 g in
  let sets = List.map (List.sort compare) parts |> List.sort compare in
  checkb "light edge cut" true (List.mem [ 1; 2 ] sets && List.mem [ 4; 5 ] sets);
  checkb "isolated node own component" true (List.mem [ 3 ] sets)

let clustering_as_grouping () =
  let g =
    mk_graph ~accesses:[ (1, 50); (2, 40); (3, 1) ] [ (1, 2, 10); (3, 3, 1) ]
  in
  let r =
    Clustering.as_grouping g
      { Grouping.default_params with Grouping.gthresh = 0.0; min_edge_weight = 1 }
      [ [ 1; 2 ]; [ 3 ] ]
  in
  checkb "groups ordered by popularity" true
    (Array.length r.Grouping.groups >= 1 && List.mem 1 r.Grouping.groups.(0))

(* ---------------- Pipeline (integration) ---------------- *)

let figure2_program scale =
  match Workloads.find "povray" with
  | Some w -> w.Workload.make scale
  | None -> Alcotest.fail "povray workload missing"

let pipeline_end_to_end () =
  let plan = Pipeline.plan (figure2_program Workload.Test) in
  checkb "formed a group" true (Array.length plan.Pipeline.grouping.Grouping.groups >= 1);
  checkb "selectors built" true (plan.Pipeline.selectors <> []);
  checkb "sites monitored" true (plan.Pipeline.rewrite.Rewrite.nbits >= 1);
  (* The A and B contexts are grouped together; C is not in their group. *)
  let contexts = plan.Pipeline.profile.Profiler.contexts in
  let g0 = plan.Pipeline.grouping.Grouping.groups.(0) in
  checkb "group has two contexts (A and B)" true (List.length g0 >= 2);
  ignore contexts

let pipeline_reduces_misses () =
  let plan = Pipeline.plan (figure2_program Workload.Test) in
  let measure mk =
    let program = figure2_program Workload.Ref in
    let hier = Hierarchy.create () in
    let hooks =
      {
        Interp.no_hooks with
        Interp.on_access = (fun a s _ -> Hierarchy.access hier a s);
      }
    in
    let vmem = Vmem.create () in
    let alloc, patches, env = mk vmem in
    let t = Interp.create ~seed:3 ~hooks ~patches ?env ~program ~alloc () in
    ignore (Interp.run t : int);
    (Hierarchy.counters hier).Hierarchy.l1_misses
  in
  let base = measure (fun vmem -> (Jemalloc_sim.create vmem, [], None)) in
  let halo =
    measure (fun vmem ->
        let fallback = Jemalloc_sim.create vmem in
        let rt = Pipeline.instantiate plan ~fallback vmem in
        (Group_alloc.iface rt.Pipeline.galloc, rt.Pipeline.patches, Some rt.Pipeline.env))
  in
  checkb "halo reduces L1 misses" true (halo < base)

let pipeline_grouped_allocations_contiguous () =
  (* Run the quickstart program under the instantiated allocator and check
     that consecutive grouped allocations are bump-contiguous. *)
  let plan = Pipeline.plan (figure2_program Workload.Test) in
  let vmem = Vmem.create () in
  let fallback = Jemalloc_sim.create vmem in
  let rt = Pipeline.instantiate plan ~fallback vmem in
  let iface = Group_alloc.iface rt.Pipeline.galloc in
  let program = figure2_program Workload.Ref in
  let grouped = ref [] in
  let hooks =
    {
      Interp.no_hooks with
      Interp.on_alloc =
        (fun addr size _ _ ->
          (* grouped iff the group allocator owns it *)
          if Option.is_some (iface.Alloc_iface.usable_size addr)
             && (iface.Alloc_iface.stats ()).Alloc_iface.mallocs > 0
          then grouped := (addr, size) :: !grouped);
    }
  in
  let t =
    Interp.create ~seed:3 ~hooks ~patches:rt.Pipeline.patches ~env:rt.Pipeline.env
      ~program ~alloc:iface ()
  in
  ignore (Interp.run t : int);
  let grouped = List.rev !grouped in
  checkb "many grouped allocations" true (List.length grouped > 100);
  (* successive grouped allocations in the same chunk are adjacent *)
  let csize = plan.Pipeline.config.Pipeline.allocator.Group_alloc.chunk_size in
  let rec adjacent_ok = function
    | (a, sa) :: ((b, _) :: _ as rest) ->
        (if a / csize = b / csize then
           if b - a <> Addr.align_up (max sa 1) 8 then
             Alcotest.failf "gap between grouped allocations: %d" (b - a));
        adjacent_ok rest
    | _ -> ()
  in
  adjacent_ok grouped

let pipeline_runtime_matches_static () =
  (* On every allocation of a full measurement run, the runtime decision
     (selector over the live group-state bits) must agree with the static
     decision (selector over the allocation's reduced chain): the chain is
     exactly the set of sites live on the stack. *)
  let plan = Pipeline.plan (figure2_program Workload.Test) in
  let vmem = Vmem.create () in
  let fallback = Jemalloc_sim.create vmem in
  let rt = Pipeline.instantiate plan ~fallback vmem in
  let galloc = rt.Pipeline.galloc in
  let max_grouped =
    plan.Pipeline.config.Pipeline.allocator.Group_alloc.max_grouped_size
  in
  let prev_grouped = ref 0 in
  let mismatches = ref 0 in
  let checked = ref 0 in
  let hooks =
    {
      Interp.no_hooks with
      Interp.on_alloc =
        (fun _addr size _site ctx ->
          let now = Group_alloc.grouped_mallocs galloc in
          let runtime_grouped = now > !prev_grouped in
          prev_grouped := now;
          let static_grouped =
            size <= min max_grouped (Vmem.page_size - 1)
            && Option.is_some
                 (Identify.classify_chain plan.Pipeline.selectors ctx)
          in
          incr checked;
          if runtime_grouped <> static_grouped then incr mismatches);
    }
  in
  let t =
    Interp.create ~seed:3 ~hooks ~patches:rt.Pipeline.patches ~env:rt.Pipeline.env
      ~program:(figure2_program Workload.Ref)
      ~alloc:(Group_alloc.iface galloc) ()
  in
  ignore (Interp.run t : int);
  checkb "allocations observed" true (!checked > 1000);
  checki "runtime/static agreement" 0 !mismatches

let pipeline_describe_and_dot () =
  let program = figure2_program Workload.Test in
  let plan = Pipeline.plan program in
  let text = Pipeline.describe plan ~site_label:(Ir.site_label program) in
  checkb "describe mentions groups" true (String.length text > 50);
  let dot = Pipeline.graph_dot plan ~site_label:(Ir.site_label program) in
  checkb "dot text" true (String.length dot > 20 && String.sub dot 0 5 = "graph")

(* ---------------- Name_ident (identification granularity) -------- *)

let name_ident_window1_is_alloc_site () =
  checki "window 1 = innermost" 0x30 (Name_ident.name_of_ctx ~window:1 [| 0x10; 0x20; 0x30 |])

let name_ident_window4_xors () =
  checki "xor of last 4" (0x20 lxor 0x30 lxor 0x40 lxor 0x50)
    (Name_ident.name_of_ctx ~window:4 [| 0x10; 0x20; 0x30; 0x40; 0x50 |]);
  checki "short contexts take all" (0x10 lxor 0x20)
    (Name_ident.name_of_ctx ~window:4 [| 0x10; 0x20 |])

let name_ident_plan_and_classify () =
  let w = Option.get (Workloads.find "povray") in
  let profile = Profiler.profile (w.Workload.make Workload.Test) in
  (* Window 1: one shared malloc site -> at most one name -> grouping over
     a single node cannot separate anything. *)
  let p1 = Name_ident.plan ~window:1 profile in
  checkb "site window sees at most one name group" true (Name_ident.groups p1 <= 1);
  (* Window 4 distinguishes create_a/create_b/create_c. *)
  let p4 = Name_ident.plan ~window:4 profile in
  checkb "xor-4 forms a group" true (Name_ident.groups p4 >= 1);
  let env = Exec_env.create () in
  env.Exec_env.cur_name4 <- 12345678;
  checkb "unknown name unclassified" true
    (Name_ident.classifier p4 ~env ~size:32 = None)

let name_ident_rejects_other_windows () =
  let w = Option.get (Workloads.find "ft") in
  let profile = Profiler.profile (w.Workload.make Workload.Test) in
  checkb "raises" true
    (try
       ignore (Name_ident.plan ~window:2 profile);
       false
     with Invalid_argument _ -> true)

(* qcheck: grouping always yields disjoint groups whose members come from
   the graph. *)
let prop_grouping_partition =
  QCheck2.Test.make ~name:"grouping: groups disjoint and drawn from the graph"
    ~count:60
    QCheck2.Gen.(
      list_size (int_range 0 40)
        (triple (int_range 0 9) (int_range 0 9) (int_range 1 20)))
    (fun edges ->
      let g = Affinity_graph.create () in
      List.iter
        (fun (x, y, w) ->
          for _ = 1 to w do
            Affinity_graph.add_affinity g x y
          done;
          Affinity_graph.add_access g x;
          Affinity_graph.add_access g y)
        edges;
      let r =
        Grouping.group g
          { Grouping.default_params with Grouping.gthresh = 0.0; min_edge_weight = 1 }
      in
      let all = Array.to_list r.Grouping.groups |> List.concat in
      let nodes = Affinity_graph.nodes g in
      List.length all = List.length (List.sort_uniq compare all)
      && List.for_all (fun x -> List.mem x nodes) all)

(* qcheck: selectors always accept the chains of their own group
   members. *)
let prop_selector_soundness =
  QCheck2.Test.make ~name:"identify: selectors accept their members' chains"
    ~count:60
    QCheck2.Gen.(
      list_size (int_range 1 8)
        (list_size (int_range 1 5) (int_range 0 6)))
    (fun raw_chains ->
      let chains =
        List.filter (fun c -> c <> []) raw_chains |> List.map (List.map (fun s -> 16 * (s + 1)))
      in
      if chains = [] then true
      else begin
        let contexts = Context.create () in
        let ids = List.map (fun c -> Context.intern contexts (Array.of_list c)) chains in
        let ids = List.sort_uniq compare ids in
        (* put the first half in a group *)
        let n = max 1 (List.length ids / 2) in
        let members = List.filteri (fun i _ -> i < n) ids in
        let grouping = mk_grouping [ members ] in
        let sels = Identify.build ~contexts ~grouping in
        List.for_all
          (fun m ->
            Identify.classify_chain sels (Context.sites contexts m) = Some 0)
          members
      end)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "score: pair" score_pair;
    tc "score: singleton without loop" score_singleton_no_loop;
    tc "score: singleton with loop" score_singleton_with_loop;
    tc "score: loops in denominator" score_loops_in_denominator;
    tc "score: triangle" score_triangle;
    tc "score: outside edges ignored" score_ignores_outside_edges;
    tc "merge: clique candidate accepted" merge_benefit_positive_for_clique;
    tc "merge: stranger rejected" merge_benefit_negative_for_stranger;
    tc "merge: tolerance slack" merge_benefit_tolerance_allows_slack;
    tc "merge: member rejected" merge_benefit_rejects_member;
    tc "grouping: two cliques" grouping_two_cliques;
    tc "grouping: hotter endpoint seeds" grouping_seed_is_hotter_endpoint;
    tc "grouping: disjoint" grouping_disjoint;
    tc "grouping: member cap" grouping_max_members;
    tc "grouping: gthresh drops but consumes" grouping_gthresh_drops_but_consumes;
    tc "grouping: edge threshold" grouping_min_edge_weight_filters;
    tc "grouping: max_groups cap" grouping_max_groups_cap;
    tc "grouping: group_of" grouping_group_of;
    tc "identify: selector soundness and conflicts" identify_selector_accepts_members;
    tc "identify: minimal sites without conflicts" identify_minimises_sites;
    tc "identify: popularity order" identify_popularity_order_permits_earlier_overlap;
    tc "identify: conflict-driven site choice" identify_conflict_counting_reduces;
    tc "identify: unresolvable conflicts tolerated" identify_unresolvable_conflict_tolerated;
    tc "rewrite: bit assignment" rewrite_bits_assigned;
    tc "rewrite: first-match classify" rewrite_classify_first_match;
    tc "rewrite: conjunction semantics" rewrite_conjunction_requires_all;
    tc "rewrite: site budget enforced" rewrite_too_many_sites_rejected;
    tc "group_alloc: bump contiguity" galloc_bump_contiguity;
    tc "group_alloc: group separation" galloc_groups_separated;
    tc "group_alloc: ungrouped forwarded" galloc_forwards_ungrouped;
    tc "group_alloc: large forwarded" galloc_forwards_large;
    tc "group_alloc: chunk masking and reuse" galloc_chunk_header_masking;
    tc "group_alloc: current chunk rewinds" galloc_current_chunk_rewinds;
    tc "group_alloc: spare policy" galloc_spare_policy_purges;
    tc "group_alloc: frag stats" galloc_frag_stats;
    tc "group_alloc: realloc within group" galloc_realloc_within_group;
    tc "group_alloc: realloc migrates from fallback" galloc_realloc_migrates_from_fallback;
    tc "group_alloc: config validation" galloc_validates_config;
    tc "clustering: stoer-wagner min cut" clustering_min_cut;
    tc "clustering: modularity cliques" clustering_modularity_two_cliques;
    tc "clustering: hcs splits at weak cut" clustering_hcs_splits;
    tc "clustering: threshold components" clustering_threshold_components;
    tc "clustering: as_grouping ordering" clustering_as_grouping;
    tc "pipeline: end to end plan" pipeline_end_to_end;
    tc "pipeline: reduces misses on Figure 2" pipeline_reduces_misses;
    tc "pipeline: grouped allocations contiguous" pipeline_grouped_allocations_contiguous;
    tc "pipeline: describe and dot" pipeline_describe_and_dot;
    tc "pipeline: runtime matches static classification" pipeline_runtime_matches_static;
    tc "name_ident: window 1 is the allocation site" name_ident_window1_is_alloc_site;
    tc "name_ident: xor of last four" name_ident_window4_xors;
    tc "name_ident: plan and classify" name_ident_plan_and_classify;
    tc "name_ident: only windows 1 and 4" name_ident_rejects_other_windows;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_grouping_partition; prop_selector_soundness ]
