(* Tests for the extension features: JSON emission, the IR pretty-printer,
   the next-line prefetcher, the sharded-free-list allocator backend, the
   profiler sampling option, and the standalone random-pool allocator. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

(* ---------------- Json ---------------- *)

let json_scalars () =
  checks "null" "null" (Json.to_string Json.Null);
  checks "bool" "true" (Json.to_string (Json.Bool true));
  checks "int" "42" (Json.to_string (Json.Int 42));
  checks "float int" "2.0" (Json.to_string (Json.Float 2.0));
  checks "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  checks "inf is null" "null" (Json.to_string (Json.Float Float.infinity))

let json_string_escaping () =
  checks "escapes" "\"a\\\"b\\\\c\\nd\"" (Json.to_string (Json.String "a\"b\\c\nd"));
  checks "control" "\"\\u0001\"" (Json.to_string (Json.String "\001"))

let json_compact_structures () =
  checks "list" "[1,2]" (Json.to_string ~pretty:false (Json.List [ Json.Int 1; Json.Int 2 ]));
  checks "obj" "{\"a\":1}" (Json.to_string ~pretty:false (Json.Obj [ ("a", Json.Int 1) ]));
  checks "empty" "[]" (Json.to_string (Json.List []));
  checks "empty obj" "{}" (Json.to_string (Json.Obj []))

let json_pretty_nests () =
  let s = Json.to_string (Json.Obj [ ("xs", Json.List [ Json.Int 1 ]) ]) in
  checkb "multiline" true (String.contains s '\n')

(* ---------------- Ir_print ---------------- *)

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let irprint_renders_sites () =
  let open Dsl in
  let p =
    program ~main:"main"
      [ func "main" [] [ malloc "x" (i 32); free_ (v "x") ] ]
  in
  let s = Ir_print.program_to_string p in
  checkb "mentions malloc with site" true (contains_sub s "malloc(32);  // site 0x");
  checkb "mentions free" true (contains_sub s "free(x);")

let irprint_roundtrippable_structure () =
  (* Not a parser roundtrip — just that every function appears. *)
  let w = Option.get (Workloads.find "povray") in
  let p = w.Workload.make Workload.Test in
  let s = Ir_print.program_to_string p in
  List.iter
    (fun f ->
      checkb ("contains " ^ f.Ir.fname) true (contains_sub s ("func " ^ f.Ir.fname)))
    (Ir.funcs p)

(* ---------------- prefetcher ---------------- *)

let prefetch_config () =
  { Hierarchy.xeon_w2195 with Hierarchy.prefetch = true }

let prefetch_sequential_wins () =
  (* A sequential sweep over 4x the L1: with prefetch, roughly half the
     demand misses disappear (next line is already resident). *)
  let run ~prefetch =
    let cfg = { Hierarchy.xeon_w2195 with Hierarchy.prefetch } in
    let h = Hierarchy.create ~config:cfg () in
    for k = 0 to (4 * 32 * 1024 / 64) - 1 do
      Hierarchy.access h (k * 64) 8
    done;
    (Hierarchy.counters h).Hierarchy.l1_misses
  in
  let without = run ~prefetch:false in
  let with_pf = run ~prefetch:true in
  checkb "sequential misses halved-ish" true
    (float_of_int with_pf < 0.6 *. float_of_int without)

let prefetch_counts_fills () =
  let h = Hierarchy.create ~config:(prefetch_config ()) () in
  Hierarchy.access h 0 8;
  let c = Hierarchy.counters h in
  checkb "prefetch issued" true (c.Hierarchy.prefetches >= 1)

let prefetch_off_by_default () =
  let h = Hierarchy.create () in
  Hierarchy.access h 0 8;
  checki "no prefetches" 0 (Hierarchy.counters h).Hierarchy.prefetches

let cache_fill_contains () =
  let c = Cache.create ~name:"t" ~size_bytes:1024 ~assoc:2 ~line_bytes:64 in
  checkb "absent" false (Cache.contains c 0);
  Cache.fill c 0;
  checkb "present after fill" true (Cache.contains c 0);
  checki "no counters touched" 0 (Cache.accesses c);
  checkb "demand access hits" true (Cache.access c 0)

(* ---------------- sharded backend ---------------- *)

let sharded_config () =
  { Group_alloc.default_config with Group_alloc.backend = Group_alloc.Sharded_free_lists }

let mk_galloc ?(config = Group_alloc.default_config) () =
  let vmem = Vmem.create () in
  let fallback = Jemalloc_sim.create vmem in
  let g =
    Group_alloc.create ~config ~classify:(fun ~size:_ -> Some 0) ~fallback vmem
  in
  (g, Group_alloc.iface g)

let sharded_reuses_freed () =
  let g, iface = mk_galloc ~config:(sharded_config ()) () in
  let keep = iface.Alloc_iface.malloc 32 in
  let a = iface.Alloc_iface.malloc 32 in
  ignore keep;
  iface.Alloc_iface.free a;
  let b = iface.Alloc_iface.malloc 32 in
  checki "region recycled in place" a b;
  checki "freelist reuse counted" 1 (Group_alloc.freelist_reuses g)

let sharded_exact_class_only () =
  let g, iface = mk_galloc ~config:(sharded_config ()) () in
  let keep = iface.Alloc_iface.malloc 32 in
  let a = iface.Alloc_iface.malloc 32 in
  ignore keep;
  iface.Alloc_iface.free a;
  (* different reserved size: must not reuse the 32-byte hole *)
  let b = iface.Alloc_iface.malloc 64 in
  checkb "no cross-class reuse" true (b <> a);
  checki "no freelist reuse" 0 (Group_alloc.freelist_reuses g)

let bump_never_reuses_freed_mid_chunk () =
  let g, iface = mk_galloc () in
  let keep = iface.Alloc_iface.malloc 32 in
  let a = iface.Alloc_iface.malloc 32 in
  ignore keep;
  iface.Alloc_iface.free a;
  let b = iface.Alloc_iface.malloc 32 in
  checkb "bump advances" true (b > a);
  checki "no freelist reuses under bump" 0 (Group_alloc.freelist_reuses g)

let sharded_reduces_footprint_under_churn () =
  (* Keep one pinned region per batch and churn the rest: bump leaks chunk
     space, sharding caps it. *)
  let churn config =
    let g, iface = mk_galloc ~config () in
    for _batch = 1 to 200 do
      ignore (iface.Alloc_iface.malloc 48 : Addr.t) (* pinned *);
      let tmp = Array.init 20 (fun _ -> iface.Alloc_iface.malloc 48) in
      Array.iter iface.Alloc_iface.free tmp
    done;
    (Group_alloc.frag_stats g).Group_alloc.peak_resident
  in
  let bump = churn { Group_alloc.default_config with Group_alloc.chunk_size = 65536 } in
  let sharded =
    churn
      { Group_alloc.default_config with
        Group_alloc.chunk_size = 65536;
        backend = Group_alloc.Sharded_free_lists }
  in
  checkb "sharded footprint smaller" true (sharded < bump)

let sharded_drained_chunk_safe () =
  (* When a chunk fully drains, its free-list entries must disappear or a
     later allocation would alias rewound bump space. *)
  let _, iface = mk_galloc ~config:(sharded_config ()) () in
  let a = iface.Alloc_iface.malloc 32 in
  let b = iface.Alloc_iface.malloc 32 in
  iface.Alloc_iface.free a;
  iface.Alloc_iface.free b;
  (* chunk drained -> rewound; now allocate twice: addresses must be
     distinct (no stale shard aliasing) *)
  let c = iface.Alloc_iface.malloc 32 in
  let d = iface.Alloc_iface.malloc 32 in
  checkb "no aliasing" true (c <> d)

let sharded_invariants_random_trace =
  QCheck2.Test.make ~name:"sharded backend: random trace keeps blocks disjoint"
    ~count:60
    QCheck2.Gen.(list_size (int_range 1 150) (pair (int_range 1 200) bool))
    (fun ops ->
      let _, iface = mk_galloc ~config:(sharded_config ()) () in
      let live = Hashtbl.create 64 in
      let order = ref [] in
      List.for_all
        (fun (size, do_free) ->
          if do_free && !order <> [] then begin
            match !order with
            | x :: rest ->
                order := rest;
                Hashtbl.remove live x;
                iface.Alloc_iface.free x;
                true
            | [] -> true
          end
          else begin
            let a = iface.Alloc_iface.malloc size in
            let ok =
              Hashtbl.fold
                (fun b bs acc -> acc && not (a < b + bs && b < a + size))
                live true
            in
            Hashtbl.replace live a size;
            order := a :: !order;
            ok
          end)
        ops)

(* ---------------- sampling profiler ---------------- *)

let sampling_reduces_observations () =
  let w = Option.get (Workloads.find "health") in
  let p = w.Workload.make Workload.Test in
  let full = Profiler.profile p in
  let sampled =
    Profiler.profile
      ~config:{ Profiler.default_config with Profiler.sample_period = 50 }
      p
  in
  checkb "fewer macro accesses" true
    (sampled.Profiler.total_accesses * 10 < full.Profiler.total_accesses);
  checkb "graph still non-empty" true
    (Affinity_graph.nodes sampled.Profiler.graph <> [])

let sampling_rejects_zero () =
  let w = Option.get (Workloads.find "ft") in
  checkb "raises" true
    (try
       ignore
         (Profiler.profile
            ~config:{ Profiler.default_config with Profiler.sample_period = 0 }
            (w.Workload.make Workload.Test));
       false
     with Invalid_argument _ -> true)

(* ---------------- standalone Random_pool allocator ---------------- *)

let random_pool_basics () =
  let vmem = Vmem.create () in
  let fallback = Jemalloc_sim.create vmem in
  let rng = Rng.create ~seed:3 in
  let alloc = Random_pool.create ~pools:4 ~rng ~fallback vmem in
  let a = alloc.Alloc_iface.malloc 32 in
  checkb "8-aligned" true (Addr.is_aligned a 8);
  alloc.Alloc_iface.free a;
  (* large requests forwarded *)
  let big = alloc.Alloc_iface.malloc 8192 in
  checkb "forwarded to fallback" true
    (Option.is_some (fallback.Alloc_iface.usable_size big));
  alloc.Alloc_iface.free big;
  checki "forward counted" 1 (alloc.Alloc_iface.stats ()).Alloc_iface.forwarded

let random_pool_spreads () =
  let vmem = Vmem.create () in
  let fallback = Jemalloc_sim.create vmem in
  let rng = Rng.create ~seed:3 in
  let alloc = Random_pool.create ~pools:4 ~chunk_size:(1 lsl 20) ~rng ~fallback vmem in
  let addrs = List.init 64 (fun _ -> alloc.Alloc_iface.malloc 32) in
  let chunks =
    List.map (fun a -> a / (1 lsl 20)) addrs |> List.sort_uniq compare
  in
  checkb "multiple pools used" true (List.length chunks >= 2)

(* ---------------- memcheck mode ---------------- *)

let memcheck_clean_program_passes () =
  let open Dsl in
  let p =
    program ~main:"main"
      [ func "main" [] [ malloc "x" (i 64); store (v "x") (i 8) (i 1);
                         load "y" (v "x") (i 8) ] ]
  in
  let vmem = Vmem.create () in
  let alloc = Jemalloc_sim.create vmem in
  let t = Interp.create ~memcheck:vmem ~program:p ~alloc () in
  checki "clean run" 0 (Interp.run t)

let memcheck_catches_use_after_munmap () =
  let open Dsl in
  (* A large allocation is a dedicated mapping; free munmaps it; the later
     load must fault under memcheck. *)
  let p =
    program ~main:"main"
      [
        func "main" []
          [ malloc "x" (i 100_000); free_ (v "x"); load "y" (v "x") (i 0) ];
      ]
  in
  let vmem = Vmem.create () in
  let alloc = Jemalloc_sim.create vmem in
  let t = Interp.create ~memcheck:vmem ~program:p ~alloc () in
  checkb "segfault" true
    (try
       ignore (Interp.run t : int);
       false
     with Failure _ -> true)

let memcheck_catches_wild_pointer () =
  let open Dsl in
  let p =
    program ~main:"main" [ func "main" [] [ load "y" (i 0xDEAD000) (i 0) ] ]
  in
  let vmem = Vmem.create () in
  let alloc = Jemalloc_sim.create vmem in
  let t = Interp.create ~memcheck:vmem ~program:p ~alloc () in
  checkb "segfault" true
    (try
       ignore (Interp.run t : int);
       false
     with Failure _ -> true)

let memcheck_whole_suite_clean () =
  (* Every workload must be memory-clean at test scale: no access outside a
     live mapping. *)
  List.iter
    (fun w ->
      let vmem = Vmem.create () in
      let alloc = Jemalloc_sim.create vmem in
      let t =
        Interp.create ~seed:1 ~memcheck:vmem
          ~program:(w.Workload.make Workload.Test) ~alloc ()
      in
      ignore (Interp.run t : int))
    Workloads.all

(* ---------------- group colouring ---------------- *)

let coloring_offsets_groups () =
  let vmem = Vmem.create () in
  let fallback = Jemalloc_sim.create vmem in
  let next = ref 0 in
  let classify ~size:_ = Some !next in
  let config = { Group_alloc.default_config with Group_alloc.color_groups = true } in
  let g = Group_alloc.create ~config ~classify ~fallback vmem in
  let iface = Group_alloc.iface g in
  let a0 = iface.Alloc_iface.malloc 32 in
  next := 1;
  let a1 = iface.Alloc_iface.malloc 32 in
  next := 2;
  let a2 = iface.Alloc_iface.malloc 32 in
  let csize = Group_alloc.default_config.Group_alloc.chunk_size in
  let set_of a = a mod csize / 64 in
  checkb "groups start at different line offsets" true
    (set_of a0 <> set_of a1 && set_of a1 <> set_of a2)

let coloring_off_by_default () =
  let vmem = Vmem.create () in
  let fallback = Jemalloc_sim.create vmem in
  let g =
    Group_alloc.create ~classify:(fun ~size:_ -> Some 3) ~fallback vmem
  in
  let a = (Group_alloc.iface g).Alloc_iface.malloc 32 in
  let csize = Group_alloc.default_config.Group_alloc.chunk_size in
  checki "starts right after the header" 64 (a mod csize)

(* ---------------- train scale / selection ---------------- *)

let train_scale_between () =
  let w = Option.get (Workloads.find "art") in
  let run scale =
    let vmem = Vmem.create () in
    let alloc = Jemalloc_sim.create vmem in
    let t = Interp.create ~seed:1 ~program:(w.Workload.make scale) ~alloc () in
    ignore (Interp.run t : int);
    Interp.instructions t
  in
  let test = run Workload.Test and train = run Workload.Train and refi = run Workload.Ref in
  checkb "test < train" true (test < train);
  checkb "train < ref" true (train < refi)

let train_sites_match () =
  List.iter
    (fun w ->
      Alcotest.check (Alcotest.list Alcotest.int)
        (w.Workload.name ^ " train sites")
        (Ir.sites (w.Workload.make Workload.Test))
        (Ir.sites (w.Workload.make Workload.Train)))
    Workloads.all

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "json: scalars" json_scalars;
    tc "json: string escaping" json_string_escaping;
    tc "json: compact structures" json_compact_structures;
    tc "json: pretty printing" json_pretty_nests;
    tc "ir_print: renders sites" irprint_renders_sites;
    tc "ir_print: all functions rendered" irprint_roundtrippable_structure;
    tc "prefetch: sequential sweep benefits" prefetch_sequential_wins;
    tc "prefetch: fills counted" prefetch_counts_fills;
    tc "prefetch: off by default" prefetch_off_by_default;
    tc "cache: fill and contains" cache_fill_contains;
    tc "sharded: reuses freed regions" sharded_reuses_freed;
    tc "sharded: exact class only" sharded_exact_class_only;
    tc "sharded: bump never reuses mid-chunk" bump_never_reuses_freed_mid_chunk;
    tc "sharded: smaller footprint under churn" sharded_reduces_footprint_under_churn;
    tc "sharded: drained chunk safe" sharded_drained_chunk_safe;
    tc "sampling: reduces observations" sampling_reduces_observations;
    tc "sampling: rejects zero period" sampling_rejects_zero;
    tc "random_pool: basics" random_pool_basics;
    tc "random_pool: spreads across pools" random_pool_spreads;
    tc "memcheck: clean program passes" memcheck_clean_program_passes;
    tc "memcheck: use after munmap faults" memcheck_catches_use_after_munmap;
    tc "memcheck: wild pointer faults" memcheck_catches_wild_pointer;
    tc "memcheck: all workloads memory-clean" memcheck_whole_suite_clean;
    tc "coloring: per-group offsets" coloring_offsets_groups;
    tc "coloring: off by default" coloring_off_by_default;
    tc "train: scale ordering" train_scale_between;
    tc "train: sites match test" train_sites_match;
  ]
  @ [ QCheck_alcotest.to_alcotest sharded_invariants_random_trace ]
