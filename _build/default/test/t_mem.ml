(* Tests for halo_mem: Addr, Vmem, Size_class. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ---------------- Addr ---------------- *)

let addr_align_up () =
  checki "already aligned" 64 (Addr.align_up 64 64);
  checki "rounds up" 128 (Addr.align_up 65 64);
  checki "zero" 0 (Addr.align_up 0 8)

let addr_align_down () =
  checki "already aligned" 64 (Addr.align_down 64 64);
  checki "rounds down" 64 (Addr.align_down 127 64)

let addr_is_aligned () =
  checkb "aligned" true (Addr.is_aligned 4096 4096);
  checkb "unaligned" false (Addr.is_aligned 4097 4096)

let addr_pow2 () =
  checkb "1" true (Addr.is_power_of_two 1);
  checkb "64" true (Addr.is_power_of_two 64);
  checkb "63" false (Addr.is_power_of_two 63);
  checkb "0" false (Addr.is_power_of_two 0);
  checkb "neg" false (Addr.is_power_of_two (-2))

let addr_rejects_bad_alignment () =
  Alcotest.check_raises "align_up 3"
    (Invalid_argument "Addr.align_up: alignment 3 is not a positive power of two")
    (fun () -> ignore (Addr.align_up 10 3))

let addr_hex () = Alcotest.check Alcotest.string "hex" "0xff" (Addr.to_hex 255)

(* ---------------- Vmem ---------------- *)

let vmem_mmap_alignment () =
  let v = Vmem.create () in
  let a = Vmem.mmap v ~size:100 ~align:(1 lsl 20) in
  checkb "1MiB aligned" true (Addr.is_aligned a (1 lsl 20))

let vmem_mappings_disjoint () =
  let v = Vmem.create () in
  let a = Vmem.mmap v ~size:8192 ~align:4096 in
  let b = Vmem.mmap v ~size:8192 ~align:4096 in
  checkb "no overlap" true (b >= a + 8192 || a >= b + 8192)

let vmem_residency_on_touch () =
  let v = Vmem.create () in
  let a = Vmem.mmap v ~size:(3 * 4096) ~align:4096 in
  checki "nothing resident" 0 (Vmem.resident_bytes v);
  Vmem.touch v a 1;
  checki "one page" 4096 (Vmem.resident_bytes v);
  Vmem.touch v (a + 4095) 2;
  (* crosses into page 2 *)
  checki "two pages" (2 * 4096) (Vmem.resident_bytes v)

let vmem_touch_unmapped_faults () =
  let v = Vmem.create () in
  checkb "segfault raised" true
    (try
       Vmem.touch v 0x1234 8;
       false
     with Failure _ -> true)

let vmem_guard_page_faults () =
  let v = Vmem.create () in
  let a = Vmem.mmap v ~size:4096 ~align:4096 in
  checkb "off-by-one caught" true
    (try
       Vmem.touch v (a + 4090) 16;
       false
     with Failure _ -> true)

let vmem_purge () =
  let v = Vmem.create () in
  let a = Vmem.mmap v ~size:(4 * 4096) ~align:4096 in
  Vmem.touch v a (4 * 4096);
  checki "all resident" (4 * 4096) (Vmem.resident_bytes v);
  Vmem.purge v a (2 * 4096);
  checki "two purged" (2 * 4096) (Vmem.resident_bytes v);
  (* purging partial pages rounds inward *)
  Vmem.touch v a (4 * 4096);
  Vmem.purge v (a + 1) 4096;
  checki "partial page not purged" (4 * 4096) (Vmem.resident_bytes v)

let vmem_munmap () =
  let v = Vmem.create () in
  let a = Vmem.mmap v ~size:4096 ~align:4096 in
  Vmem.touch v a 8;
  Vmem.munmap v a;
  checki "residency dropped" 0 (Vmem.resident_bytes v);
  checkb "no longer mapped" false (Vmem.is_mapped v a)

let vmem_resident_in_range () =
  let v = Vmem.create () in
  let a = Vmem.mmap v ~size:(4 * 4096) ~align:4096 in
  Vmem.touch v a 8;
  Vmem.touch v (a + (3 * 4096)) 8;
  checki "range count" 4096 (Vmem.resident_bytes_in v a 4096);
  checki "whole mapping" (2 * 4096) (Vmem.resident_bytes_in v a (4 * 4096))

let vmem_counts_mmap_calls () =
  let v = Vmem.create () in
  ignore (Vmem.mmap v ~size:4096 ~align:4096 : Addr.t);
  ignore (Vmem.mmap v ~size:4096 ~align:4096 : Addr.t);
  checki "two calls" 2 (Vmem.mmap_calls v)

(* ---------------- Size_class ---------------- *)

let size_class_smalls () =
  checki "16 -> 16" 16 (Option.get (Size_class.round_up 16));
  checki "17 -> 32" 32 (Option.get (Size_class.round_up 17));
  checki "0 -> 16" 16 (Option.get (Size_class.round_up 0));
  checki "33 -> 48" 48 (Option.get (Size_class.round_up 33));
  checki "129 -> 160" 160 (Option.get (Size_class.round_up 129))

let size_class_large_none () =
  Alcotest.check Alcotest.bool "large has no class" true
    (Size_class.class_of_size (Size_class.small_max + 1) = None)

let size_class_monotone () =
  let prev = ref 0 in
  for c = 0 to Size_class.nclasses - 1 do
    let s = Size_class.size_of_class c in
    checkb "strictly increasing" true (s > !prev);
    prev := s
  done

let size_class_cover () =
  (* round_up n >= n for all small n, and minimal among classes *)
  for n = 1 to Size_class.small_max do
    let c = Option.get (Size_class.class_of_size n) in
    let s = Size_class.size_of_class c in
    if s < n then Alcotest.failf "class %d (%d) smaller than request %d" c s n;
    if c > 0 && Size_class.size_of_class (c - 1) >= n then
      Alcotest.failf "class %d not minimal for %d" c n
  done

let prop_size_class_fits =
  QCheck2.Test.make ~name:"size_class: round_up fits and is quantum-aligned"
    ~count:500
    QCheck2.Gen.(int_range 0 Size_class.small_max)
    (fun n ->
      match Size_class.round_up n with
      | None -> false
      | Some s -> s >= max n 1 && s mod Size_class.quantum = 0)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "addr: align_up" addr_align_up;
    tc "addr: align_down" addr_align_down;
    tc "addr: is_aligned" addr_is_aligned;
    tc "addr: power-of-two check" addr_pow2;
    tc "addr: rejects bad alignment" addr_rejects_bad_alignment;
    tc "addr: hex rendering" addr_hex;
    tc "vmem: mmap alignment honoured" vmem_mmap_alignment;
    tc "vmem: mappings disjoint" vmem_mappings_disjoint;
    tc "vmem: demand paging on touch" vmem_residency_on_touch;
    tc "vmem: unmapped touch is a fault" vmem_touch_unmapped_faults;
    tc "vmem: guard page catches overruns" vmem_guard_page_faults;
    tc "vmem: purge returns pages" vmem_purge;
    tc "vmem: munmap drops residency" vmem_munmap;
    tc "vmem: resident_bytes_in" vmem_resident_in_range;
    tc "vmem: mmap call counting" vmem_counts_mmap_calls;
    tc "size_class: small sizes" size_class_smalls;
    tc "size_class: large returns None" size_class_large_none;
    tc "size_class: strictly monotone" size_class_monotone;
    tc "size_class: minimal cover" size_class_cover;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_size_class_fits ]
