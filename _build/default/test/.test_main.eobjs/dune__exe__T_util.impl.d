test/t_util.ml: Alcotest Array Bitset Dot Float Fun List QCheck2 QCheck_alcotest Rng Stats String Table
