test/t_experiments.ml: Alcotest Figures Float Group_alloc Hierarchy List Option Pipeline Runner String Table Workloads
