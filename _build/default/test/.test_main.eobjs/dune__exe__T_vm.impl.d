test/t_vm.ml: Alcotest Array Bitset Context Dsl Exec_env Group_alloc Interp Ir Ir_analysis Jemalloc_sim List Option Profiler QCheck2 QCheck_alcotest Shadow_stack String Vmem Workload Workloads
