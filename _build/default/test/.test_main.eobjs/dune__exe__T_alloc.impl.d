test/t_alloc.ml: Addr Alcotest Alloc_iface Bump Hashtbl Jemalloc_sim List Ptmalloc_sim QCheck2 QCheck_alcotest Rng Vmem
