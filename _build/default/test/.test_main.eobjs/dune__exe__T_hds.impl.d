test/t_hds.ml: Alcotest Array Exec_env Hashtbl Hds_pipeline Hot_streams List Option QCheck2 QCheck_alcotest Sequitur Set_packing Workload Workloads
