test/test_main.ml: Alcotest T_alloc T_cachesim T_core T_experiments T_extensions T_hds T_mem T_profile T_reference_models T_util T_vm T_workloads
