test/t_reference_models.ml: Affinity_graph Affinity_queue Array Cache Float Hashtbl Heap_model Identify List QCheck2 QCheck_alcotest Score
