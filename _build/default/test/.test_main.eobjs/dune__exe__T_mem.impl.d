test/t_mem.ml: Addr Alcotest Option QCheck2 QCheck_alcotest Size_class Vmem
