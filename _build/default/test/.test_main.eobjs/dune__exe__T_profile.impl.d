test/t_profile.ml: Affinity_graph Affinity_queue Alcotest Array Context Dsl Heap_model List Option Profiler QCheck2 QCheck_alcotest
