test/t_workloads.ml: Affinity_graph Alcotest Array Context Group_alloc Grouping Interp Ir Jemalloc_sim List Option Profiler Vmem Workload Workloads
