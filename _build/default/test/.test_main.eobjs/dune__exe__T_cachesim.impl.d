test/t_cachesim.ml: Alcotest Cache Hierarchy List QCheck2 QCheck_alcotest Timing Tlb
