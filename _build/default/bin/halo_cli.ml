(* The `halo` command-line tool.

   Mirrors the artefact appendix's workflow (A.5): `halo baseline` and
   `halo run` measure a workload under the default and optimised
   configurations, `halo plot`'s role is played by `halo figures` (text
   tables rather than PDFs), and the A.8 per-benchmark flags
   (--chunk-size, --max-spare-chunks, --max-groups) are accepted by
   `halo run`. `halo plan` additionally exposes the optimisation plan
   itself — groups, selectors, monitored sites, and the Figure 9 affinity
   graph as graphviz dot. *)

open Cmdliner

let workload_conv =
  let parse s =
    match Workloads.find s with
    | Some w -> Ok w
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown workload %S (try: %s)" s
                (String.concat ", " Workloads.names)))
  in
  let print ppf w = Format.pp_print_string ppf w.Workload.name in
  Arg.conv (parse, print)

let workload_arg =
  Arg.(
    required
    & opt (some workload_conv) None
    & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload to operate on.")

let seed_arg =
  Arg.(value & opt int 2 & info [ "seed" ] ~docv:"N" ~doc:"Measurement input seed.")

let kind_conv =
  let table =
    [
      ("jemalloc", Runner.Jemalloc);
      ("ptmalloc", Runner.Ptmalloc);
      ("halo", Runner.Halo);
      ("noalloc", Runner.Halo_no_alloc);
      ("hds", Runner.Hds);
      ("hds-merged", Runner.Hds_merged_packing);
      ("random", Runner.Random_pools 4);
    ]
  in
  let parse s =
    match List.assoc_opt s table with
    | Some k -> Ok k
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown config %S (one of: %s)" s
                (String.concat ", " (List.map fst table))))
  in
  let print ppf k = Format.pp_print_string ppf (Runner.kind_name k) in
  Arg.conv (parse, print)

let kind_arg =
  Arg.(
    value
    & opt kind_conv Runner.Halo
    & info [ "c"; "config" ] ~docv:"CONFIG"
        ~doc:
          "Allocator configuration: jemalloc, ptmalloc, halo, noalloc, hds, \
           hds-merged, or random.")

let chunk_size_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "chunk-size" ] ~docv:"BYTES" ~doc:"Group-chunk size (A.8 flag).")

let spare_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-spare-chunks" ] ~docv:"N"
        ~doc:"Spare chunks kept resident when purging (A.8 flag).")

let max_groups_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-groups" ] ~docv:"N" ~doc:"Cap on allocation groups (A.8 flag).")

let affinity_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "affinity-distance" ] ~docv:"BYTES"
        ~doc:"Affinity distance A for profiling (default 128).")

let pipeline_config ~chunk_size ~spare ~max_groups ~affinity =
  let c = Pipeline.default_config in
  let allocator =
    {
      c.Pipeline.allocator with
      Group_alloc.chunk_size =
        Option.value chunk_size ~default:c.Pipeline.allocator.Group_alloc.chunk_size;
      spare_policy =
        (match spare with
        | Some n -> Group_alloc.Keep_spare n
        | None -> c.Pipeline.allocator.Group_alloc.spare_policy);
    }
  in
  let grouping =
    match max_groups with
    | Some n -> { c.Pipeline.grouping with Grouping.max_groups = Some n }
    | None -> c.Pipeline.grouping
  in
  let profiler =
    match affinity with
    | Some a -> { c.Pipeline.profiler with Profiler.affinity_distance = a }
    | None -> c.Pipeline.profiler
  in
  { c with Pipeline.allocator; grouping; profiler }

let print_measurement ?baseline (m : Runner.measurement) =
  Printf.printf "workload:      %s\nconfiguration: %s\n" m.Runner.workload
    (Runner.kind_name m.Runner.kind);
  Printf.printf "instructions:  %d\n" m.Runner.instructions;
  Printf.printf "accesses:      %d\n" m.Runner.counters.Hierarchy.accesses;
  Printf.printf "L1D misses:    %d\n" m.Runner.counters.Hierarchy.l1_misses;
  Printf.printf "L2 misses:     %d\n" m.Runner.counters.Hierarchy.l2_misses;
  Printf.printf "L3 misses:     %d\n" m.Runner.counters.Hierarchy.l3_misses;
  Printf.printf "DTLB misses:   %d\n" m.Runner.counters.Hierarchy.tlb_misses;
  Printf.printf "cycles:        %.0f\n" m.Runner.cycles;
  Printf.printf "sim time:      %.3f ms\n" (m.Runner.seconds *. 1e3);
  (match baseline with
  | Some b when b != m ->
      Printf.printf "vs jemalloc:   %s misses, %s time\n"
        (Table.fmt_pct (Runner.miss_reduction_vs ~baseline:b m))
        (Table.fmt_pct (Runner.speedup_vs ~baseline:b m))
  | _ -> ());
  (match m.Runner.halo with
  | Some h ->
      Printf.printf
        "halo:          %d groups, %d monitored sites, %d graph nodes\n"
        h.Runner.groups h.Runner.monitored_sites h.Runner.graph_nodes;
      Printf.printf
        "allocator:     %d grouped mallocs, %d chunks carved, %d reuses\n"
        h.Runner.grouped_mallocs h.Runner.chunks_carved h.Runner.chunk_reuses;
      Printf.printf "fragmentation: %.2f%% (%s at peak)\n"
        (100.0 *. h.Runner.frag.Group_alloc.frag_pct)
        (Table.fmt_bytes h.Runner.frag.Group_alloc.frag_bytes)
  | None -> ());
  match m.Runner.hds with
  | Some h ->
      Printf.printf
        "hds:           %d pools from %d candidate streams (%d selected, %.0f%% \
         coverage, trace %d)\n"
        h.Runner.pools h.Runner.stream_count h.Runner.selected_streams
        (100.0 *. h.Runner.hds_coverage)
        h.Runner.trace_length
  | None -> ()

let run_cmd =
  let run w kind seed chunk_size spare max_groups affinity json_out =
    let pc = pipeline_config ~chunk_size ~spare ~max_groups ~affinity in
    let baseline = Runner.run ~seed w Runner.Jemalloc in
    let m =
      if kind = Runner.Jemalloc then baseline
      else Runner.run ~seed ~pipeline_config:pc w kind
    in
    print_measurement ~baseline m;
    match json_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Json.to_channel oc (Runner.to_json ~baseline m);
        close_out oc;
        Printf.printf "data points written to %s\n" path
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the run's data points as JSON (A.6 workflow).")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Measure a workload under a configuration.")
    Term.(
      const run $ workload_arg $ kind_arg $ seed_arg $ chunk_size_arg $ spare_arg
      $ max_groups_arg $ affinity_arg $ json_arg)

let baseline_cmd =
  let run w seed =
    print_measurement (Runner.run ~seed w Runner.Jemalloc)
  in
  Cmd.v
    (Cmd.info "baseline" ~doc:"Measure a workload under plain jemalloc.")
    Term.(const run $ workload_arg $ seed_arg)

let plan_cmd =
  let run w dot_file affinity =
    let pc =
      pipeline_config ~chunk_size:None ~spare:None ~max_groups:None ~affinity
    in
    let config =
      {
        pc with
        Pipeline.grouping = w.Workload.halo_grouping pc.Pipeline.grouping;
        allocator = w.Workload.halo_allocator pc.Pipeline.allocator;
      }
    in
    let program = w.Workload.make Workload.Test in
    let plan = Pipeline.plan ~config program in
    print_string (Pipeline.describe plan ~site_label:(Ir.site_label program));
    match dot_file with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc
          (Pipeline.graph_dot plan ~site_label:(Ir.site_label program));
        close_out oc;
        Printf.printf "affinity graph written to %s\n" path
  in
  let dot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:"Write the grouped affinity graph (Figure 9 analog) as dot.")
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Show the HALO optimisation plan for a workload.")
    Term.(const run $ workload_arg $ dot_arg $ affinity_arg)

let sweep_cmd =
  let run distances =
    let distances = match distances with [] -> None | l -> Some l in
    Table.print (Figures.fig12 ?distances ())
  in
  let distances_arg =
    Arg.(
      value & opt (list int) []
      & info [ "distances" ] ~docv:"A,B,..."
          ~doc:"Affinity distances to sweep (default 8..131072, powers of 2).")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Figure 12: omnetpp execution time across affinity distances.")
    Term.(const run $ distances_arg)

let figures_cmd =
  let run which =
    match which with
    | "all" -> Figures.print_all ()
    | "fig12" -> Table.print (Figures.fig12 ())
    | "sec51" -> Table.print (Figures.sec51_baseline ())
    | "overhead" -> Table.print (Figures.overhead_control ())
    | "ablation" ->
        Table.print (Figures.ablation_grouping ());
        Table.print (Figures.ablation_packing ());
        Table.print (Figures.ablation_identification ());
        Table.print (Figures.ablation_backend ());
        Table.print (Figures.ablation_sampling ())
    | "fig13" | "fig14" | "fig15" | "tab1" | "diag" ->
        let suite = Figures.run_suite () in
        let t =
          match which with
          | "fig13" -> Figures.fig13 suite
          | "fig14" -> Figures.fig14 suite
          | "fig15" -> Figures.fig15 suite
          | "tab1" -> Figures.tab1 suite
          | _ -> Figures.hds_diagnostics suite
        in
        Table.print t
    | other ->
        Printf.eprintf "unknown figure %S\n" other;
        exit 2
  in
  let which_arg =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"FIGURE"
          ~doc:
            "One of: all, fig12, fig13, fig14, fig15, tab1, sec51, overhead, \
             diag, ablation.")
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Regenerate the paper's tables and figures.")
    Term.(const run $ which_arg)

let contexts_cmd =
  let run w =
    let program = w.Workload.make Workload.Test in
    let r = Profiler.profile program in
    let label = Ir.site_label program in
    let graph = r.Profiler.graph in
    Printf.printf
      "%d contexts observed; %d tracked allocations; %d macro accesses\n\n"
      (Context.count r.Profiler.contexts)
      r.Profiler.tracked_allocs r.Profiler.total_accesses;
    Context.fold r.Profiler.contexts ~init:() ~f:(fun () id _sites ->
        Printf.printf "ctx %3d  %8d accesses%s  %s\n" id
          (Affinity_graph.node_accesses r.Profiler.raw_graph id)
          (if Affinity_graph.node_accesses graph id > 0 then "" else " (filtered)")
          (Context.label r.Profiler.contexts label id))
  in
  Cmd.v
    (Cmd.info "contexts"
       ~doc:"Profile a workload and list its allocation contexts.")
    Term.(const run $ workload_arg)

let disasm_cmd =
  let run w scale_name stats =
    let scale =
      match scale_name with
      | "test" -> Workload.Test
      | "train" -> Workload.Train
      | _ -> Workload.Ref
    in
    let program = w.Workload.make scale in
    if stats then print_string (Ir_analysis.stats_to_string (Ir_analysis.analyse program))
    else print_string (Ir_print.program_to_string program)
  in
  let scale_arg =
    Arg.(
      value & opt string "test"
      & info [ "scale" ] ~docv:"SCALE" ~doc:"test, train or ref.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Print call-graph statistics instead of the IR.")
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Pretty-print a workload's IR with site addresses.")
    Term.(const run $ workload_arg $ scale_arg $ stats_arg)

let list_cmd =
  let run () =
    List.iter
      (fun w -> Printf.printf "%-10s %s\n" w.Workload.name w.Workload.description)
      Workloads.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available workloads.") Term.(const run $ const ())

let () =
  let info =
    Cmd.info "halo" ~version:"1.0.0"
      ~doc:"HALO post-link heap-layout optimisation (simulated reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd; baseline_cmd; plan_cmd; sweep_cmd; figures_cmd; disasm_cmd;
            contexts_cmd; list_cmd;
          ]))
