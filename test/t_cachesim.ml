(* Tests for halo_cachesim: Cache, Tlb, Hierarchy, Timing. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checkf msg = Alcotest.check (Alcotest.float 1e-6) msg

let small_cache () = Cache.create ~name:"t" ~size_bytes:1024 ~assoc:2 ~line_bytes:64
(* 1024 / (2*64) = 8 sets *)

let cache_cold_miss_then_hit () =
  let c = small_cache () in
  checkb "cold miss" false (Cache.access c 0);
  checkb "hit" true (Cache.access c 0);
  checkb "same line hit" true (Cache.access c 63);
  checkb "next line miss" false (Cache.access c 64)

let cache_geometry () =
  let c = small_cache () in
  checki "sets" 8 (Cache.sets c);
  checki "assoc" 2 (Cache.assoc c);
  checki "line" 64 (Cache.line_bytes c);
  Alcotest.check Alcotest.string "name" "t" (Cache.name c)

let cache_lru_eviction () =
  let c = small_cache () in
  (* Three lines mapping to set 0: line addresses 0, 8*64, 16*64. *)
  let l0 = 0 and l1 = 8 * 64 and l2 = 16 * 64 in
  ignore (Cache.access c l0 : bool);
  ignore (Cache.access c l1 : bool);
  ignore (Cache.access c l2 : bool);
  (* l0 was LRU: evicted. *)
  checkb "LRU victim evicted" false (Cache.access c l0);
  (* l2 was MRU before l0's refill; l1 was evicted by l0. *)
  checkb "MRU survives" true (Cache.access c l2)

let cache_lru_touch_refreshes () =
  let c = small_cache () in
  let l0 = 0 and l1 = 8 * 64 and l2 = 16 * 64 in
  ignore (Cache.access c l0 : bool);
  ignore (Cache.access c l1 : bool);
  ignore (Cache.access c l0 : bool);
  (* refresh l0 *)
  ignore (Cache.access c l2 : bool);
  (* now l1 is the victim *)
  checkb "refreshed line survives" true (Cache.access c l0);
  checkb "stale line evicted" false (Cache.access c l1)

let cache_counters () =
  let c = small_cache () in
  ignore (Cache.access c 0 : bool);
  ignore (Cache.access c 0 : bool);
  ignore (Cache.access c 64 : bool);
  checki "hits" 1 (Cache.hits c);
  checki "misses" 2 (Cache.misses c);
  checki "accesses" 3 (Cache.accesses c);
  Cache.reset_counters c;
  checki "reset" 0 (Cache.accesses c);
  checkb "contents preserved" true (Cache.access c 0)

let cache_flush () =
  let c = small_cache () in
  ignore (Cache.access c 0 : bool);
  Cache.flush c;
  checkb "flushed" false (Cache.access c 0)

let cache_working_set_fits () =
  (* A working set equal to capacity must fully hit on the second pass. *)
  let c = small_cache () in
  for k = 0 to 15 do
    ignore (Cache.access c (k * 64) : bool)
  done;
  Cache.reset_counters c;
  for k = 0 to 15 do
    ignore (Cache.access c (k * 64) : bool)
  done;
  checki "all hits" 16 (Cache.hits c)

let cache_thrash_over_capacity () =
  (* Cyclic sweep of capacity+1 lines in one set thrashes under LRU. *)
  let c = Cache.create ~name:"t1" ~size_bytes:128 ~assoc:2 ~line_bytes:64 in
  (* 1 set, 2 ways *)
  for _pass = 1 to 3 do
    for k = 0 to 2 do
      ignore (Cache.access c (k * 64) : bool)
    done
  done;
  checki "no hits when cycling 3 lines through 2 ways" 0 (Cache.hits c)

let cache_locate_mask_matches_division () =
  (* The pow2 mask/shift fast path must agree with the exact mod/div
     formula, and a non-pow2 set count (the modelled Xeon's 11-way L3
     has 36864 sets) must take the fallback and still be exact. *)
  let check_cache c =
    let sets = Cache.sets c and line = Cache.line_bytes c in
    List.iter
      (fun addr ->
        let set, tag = Cache.locate c addr in
        let lineno = addr / line in
        checki (Printf.sprintf "set of %#x" addr) (lineno mod sets) set;
        checki (Printf.sprintf "tag of %#x" addr) (lineno / sets) tag)
      [ 0; 63; 64; 4095; 4096; 65535; 123_456_789; 0x7f00_0000_0000 ]
  in
  (* pow2 sets: 1024/(2*64) = 8 *)
  check_cache (Cache.create ~name:"p2" ~size_bytes:1024 ~assoc:2 ~line_bytes:64);
  (* single set (degenerate pow2) *)
  check_cache (Cache.create ~name:"one" ~size_bytes:128 ~assoc:2 ~line_bytes:64);
  (* non-pow2 sets: 25344 KiB, 11-way, 64B lines -> 36864 sets *)
  check_cache
    (Cache.create ~name:"l3" ~size_bytes:(25344 * 1024) ~assoc:11
       ~line_bytes:64)

let cache_non_pow2_behaviour () =
  (* A non-pow2 cache still hits/misses coherently through the fallback
     set extraction: 3 sets, 2-way. *)
  let c = Cache.create ~name:"np2" ~size_bytes:384 ~assoc:2 ~line_bytes:64 in
  checki "sets" 3 (Cache.sets c);
  checkb "cold" false (Cache.access c 0);
  checkb "hit" true (Cache.access c 0);
  (* 0 and 3*64 map to the same set, different tags: fills the set. *)
  checkb "same-set cold" false (Cache.access c (3 * 64));
  checkb "both resident" true (Cache.access c 0);
  checkb "both resident" true (Cache.access c (3 * 64));
  (* A third tag in set 0 evicts the LRU line (addr 0). *)
  checkb "third tag misses" false (Cache.access c (6 * 64));
  checkb "LRU evicted" false (Cache.access c 0)

let tlb_basic () =
  let t = Tlb.create () in
  checkb "cold" false (Tlb.access t 0x5000);
  checkb "same page" true (Tlb.access t 0x5FFF);
  checkb "other page" false (Tlb.access t 0x6000);
  checki "misses" 2 (Tlb.misses t);
  checki "hits" 1 (Tlb.hits t)

let hierarchy_miss_propagation () =
  let h = Hierarchy.create () in
  Hierarchy.access h 0x10000 8;
  let c = Hierarchy.counters h in
  checki "l1 miss" 1 c.Hierarchy.l1_misses;
  checki "l2 miss" 1 c.Hierarchy.l2_misses;
  checki "l3 miss" 1 c.Hierarchy.l3_misses;
  Hierarchy.access h 0x10000 8;
  let c = Hierarchy.counters h in
  checki "second access hits L1" 1 c.Hierarchy.l1_misses;
  checki "accesses counted" 2 c.Hierarchy.accesses

let hierarchy_straddling_access () =
  let h = Hierarchy.create () in
  (* 16 bytes starting 8 before a line boundary touch two lines. *)
  Hierarchy.access h (0x20000 - 8) 16;
  let c = Hierarchy.counters h in
  checki "two line misses" 2 c.Hierarchy.l1_misses;
  checki "one program access" 1 c.Hierarchy.accesses

let hierarchy_l2_catches_l1_evictions () =
  let h = Hierarchy.create () in
  let cfg = Hierarchy.config h in
  (* Touch 2x the L1 size, then re-touch: L1 misses but L2 holds it. *)
  let lines = 2 * cfg.Hierarchy.l1_size / cfg.Hierarchy.line_bytes in
  for k = 0 to lines - 1 do
    Hierarchy.access h (k * cfg.Hierarchy.line_bytes) 8
  done;
  Hierarchy.reset_counters h;
  for k = 0 to lines - 1 do
    Hierarchy.access h (k * cfg.Hierarchy.line_bytes) 8
  done;
  let c = Hierarchy.counters h in
  checkb "L1 misses on sweep" true (c.Hierarchy.l1_misses > 0);
  checki "but L2 absorbs everything" 0 c.Hierarchy.l2_misses

let timing_monotone_in_misses () =
  let m = Timing.skylake_sp in
  let base =
    { Hierarchy.accesses = 1000; l1_misses = 10; l2_misses = 5; l3_misses = 1;
      tlb_misses = 0; prefetches = 0 }
  in
  let worse = { base with Hierarchy.l1_misses = 100 } in
  checkb "more misses, more cycles" true
    (Timing.cycles m ~instructions:1000 worse
    > Timing.cycles m ~instructions:1000 base)

let timing_speedup_signs () =
  checkf "28% speedup" 0.28 (Timing.speedup ~baseline:100.0 ~optimised:72.0);
  checkb "slowdown negative" true (Timing.speedup ~baseline:100.0 ~optimised:110.0 < 0.0)

let timing_miss_reduction () =
  checkf "23%" 0.23 (Timing.miss_reduction ~baseline:100 ~optimised:77);
  checkf "zero baseline" 0.0 (Timing.miss_reduction ~baseline:0 ~optimised:5)

let timing_seconds_scale () =
  let m = Timing.skylake_sp in
  let c =
    { Hierarchy.accesses = 0; l1_misses = 0; l2_misses = 0; l3_misses = 0;
      tlb_misses = 0; prefetches = 0 }
  in
  let cycles = Timing.cycles m ~instructions:1_000_000 c in
  checkf "seconds = cycles/GHz" (cycles /. (m.Timing.ghz *. 1e9))
    (Timing.seconds m ~instructions:1_000_000 c)

(* qcheck: hits + misses = accesses, under random access streams. *)
let prop_cache_accounting =
  QCheck2.Test.make ~name:"cache: hits + misses = accesses" ~count:100
    QCheck2.Gen.(list_size (int_range 1 500) (int_range 0 (1 lsl 16)))
    (fun addrs ->
      let c = small_cache () in
      List.iter (fun a -> ignore (Cache.access c a : bool)) addrs;
      Cache.hits c + Cache.misses c = List.length addrs)

(* qcheck: immediate repetition always hits. *)
let prop_cache_repeat_hits =
  QCheck2.Test.make ~name:"cache: immediately repeated access hits" ~count:100
    QCheck2.Gen.(list_size (int_range 1 200) (int_range 0 (1 lsl 20)))
    (fun addrs ->
      let c = small_cache () in
      List.for_all
        (fun a ->
          ignore (Cache.access c a : bool);
          Cache.access c a)
        addrs)

(* qcheck: inclusion-style monotonicity of the hierarchy counters. *)
let prop_hierarchy_counter_order =
  QCheck2.Test.make ~name:"hierarchy: l3 <= l2 <= l1 misses" ~count:50
    QCheck2.Gen.(list_size (int_range 1 300) (int_range 0 (1 lsl 22)))
    (fun addrs ->
      let h = Hierarchy.create () in
      List.iter (fun a -> Hierarchy.access h a 8) addrs;
      let c = Hierarchy.counters h in
      c.Hierarchy.l3_misses <= c.Hierarchy.l2_misses
      && c.Hierarchy.l2_misses <= c.Hierarchy.l1_misses
      (* an unaligned 8-byte access may straddle two lines *)
      && c.Hierarchy.l1_misses <= 2 * List.length addrs)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "cache: cold miss then hit" cache_cold_miss_then_hit;
    tc "cache: geometry" cache_geometry;
    tc "cache: LRU eviction" cache_lru_eviction;
    tc "cache: LRU refresh on touch" cache_lru_touch_refreshes;
    tc "cache: counters" cache_counters;
    tc "cache: flush" cache_flush;
    tc "cache: capacity working set hits" cache_working_set_fits;
    tc "cache: over-capacity cyclic thrash" cache_thrash_over_capacity;
    tc "cache: locate matches mod/div on all geometries" cache_locate_mask_matches_division;
    tc "cache: non-pow2 set count behaves" cache_non_pow2_behaviour;
    tc "tlb: page granularity" tlb_basic;
    tc "hierarchy: miss propagation" hierarchy_miss_propagation;
    tc "hierarchy: straddling access" hierarchy_straddling_access;
    tc "hierarchy: L2 absorbs L1 evictions" hierarchy_l2_catches_l1_evictions;
    tc "timing: monotone in misses" timing_monotone_in_misses;
    tc "timing: speedup signs" timing_speedup_signs;
    tc "timing: miss reduction" timing_miss_reduction;
    tc "timing: seconds scale" timing_seconds_scale;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_cache_accounting; prop_cache_repeat_hits; prop_hierarchy_counter_order ]
