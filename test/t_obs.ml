(* Tests for halo_obs: Metrics (quantile sketches), Trace, Obs, Trace_event. *)

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checks = check Alcotest.string
let checkf msg = check (Alcotest.float 1e-9) msg

(* A deterministic clock for span timing tests. *)
let fake_clock () =
  let now = ref 0.0 in
  ((fun () -> !now), fun dt -> now := !now +. dt)

(* ---------------- Metrics ---------------- *)

let metrics_counter () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "c" in
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  checki "accumulates" 42 (Metrics.counter_value c);
  checks "name" "c" (Metrics.counter_name c);
  checkb "registration is idempotent" true (c == Metrics.counter reg "c")

let metrics_kind_mismatch () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "c" : Metrics.counter);
  let raised =
    try
      ignore (Metrics.gauge reg "c" : Metrics.gauge);
      false
    with Invalid_argument _ -> true
  in
  checkb "re-registering as another kind raises" true raised

let metrics_gauge () =
  let reg = Metrics.create () in
  let g = Metrics.gauge reg "g" in
  List.iter (Metrics.set g) [ 1.0; 5.0; 2.0 ];
  checkf "last wins" 2.0 (Metrics.gauge_value g);
  match List.assoc "g" (Metrics.snapshot reg) with
  | Metrics.Gauge { last; max; samples } ->
      checkf "last" 2.0 last;
      checkf "running max" 5.0 max;
      checki "sample count" 3 samples
  | _ -> Alcotest.fail "expected a gauge"

(* ---------------- Quantile sketch ---------------- *)

let sketch_basics () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "h" in
  checkf "default accuracy" Metrics.default_alpha (Metrics.histogram_alpha h);
  List.iter (Metrics.observe h) [ 0.0; -1.0; 1.0; 100.0; 1e6 ];
  checki "count includes non-positive" 5 (Metrics.histogram_count h);
  checkf "sum is exact" 1000100.0 (Metrics.histogram_sum h);
  checkf "min" (-1.0) (Metrics.histogram_min h);
  checkf "max" 1e6 (Metrics.histogram_max h);
  (match Metrics.histogram_buckets h with
  | (0.0, z) :: pos ->
      checki "zero bucket tallies v <= 0" 2 z;
      checki "one sparse bucket per distinct magnitude" 3 (List.length pos);
      checkb "positive bounds ascend" true
        (List.sort compare pos = pos)
  | _ -> Alcotest.fail "expected the zero bucket first");
  (* Low ranks fall in the zero bucket, the top rank near the max. *)
  checkf "q=0.1 is zero" 0.0 (Option.get (Metrics.quantile h 0.1));
  let top = Option.get (Metrics.quantile h 1.0) in
  checkb "q=1 within alpha of max" true
    (Float.abs (top -. 1e6) /. 1e6 <= Metrics.default_alpha);
  checkb "empty sketch has no quantile" true
    (Metrics.quantile (Metrics.histogram reg "h2") 0.5 = None)

let sketch_relative_error () =
  (* 1..1000: the true q-quantile at rank r = floor(q * 999) is r + 1; the
     sketch must land within its documented relative-error bound. *)
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "lat" in
  for v = 1 to 1000 do
    Metrics.observe h (float_of_int v)
  done;
  List.iter
    (fun q ->
      let rank = int_of_float (q *. 999.0) in
      let true_v = float_of_int (rank + 1) in
      let est = Option.get (Metrics.quantile h q) in
      checkb
        (Printf.sprintf "q=%.3f: |%.3f - %.0f| within alpha" q est true_v)
        true
        (Float.abs (est -. true_v) /. true_v
        <= Metrics.histogram_alpha h +. 1e-9))
    [ 0.0; 0.5; 0.9; 0.99; 0.999; 1.0 ]

let sketch_merge_exact () =
  (* Per-bucket integer addition: a merged sketch equals the sketch of the
     concatenated stream, bit for bit. *)
  let observe_all h vs = List.iter (Metrics.observe h) vs in
  let a = Metrics.create () and b = Metrics.create () and c = Metrics.create () in
  let xs = [ 3.0; 14.0; 159.0; 0.0 ] and ys = [ 2.0; 71.0; 828.0; 14.0 ] in
  observe_all (Metrics.histogram a "h") xs;
  observe_all (Metrics.histogram b "h") ys;
  observe_all (Metrics.histogram c "h") (xs @ ys);
  Metrics.merge ~into:a b;
  checks "merge equals one-stream sketch"
    (Json.to_string (Metrics.to_json c))
    (Json.to_string (Metrics.to_json a))

let sketch_merge_alpha_mismatch () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.observe (Metrics.histogram ~alpha:0.01 a "h") 1.0;
  Metrics.observe (Metrics.histogram ~alpha:0.05 b "h") 1.0;
  let raised =
    try
      Metrics.merge ~into:a b;
      false
    with Invalid_argument msg ->
      checks "names the sketch" "Metrics.merge: \"h\" sketch accuracy differs" msg;
      true
  in
  checkb "alpha mismatch raises" true raised

let count_substring needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go from acc =
    if from + n > h then acc
    else if String.sub hay from n = needle then go (from + n) (acc + 1)
    else go (from + 1) acc
  in
  go 0 0

let sketch_json_roundtrip () =
  (* value_to_json -> text -> value_of_json must round-trip the bucket
     counts exactly, spell the overflow bound the OpenMetrics way, and
     re-derive identical quantiles from the decoded value. *)
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "h" in
  List.iter (Metrics.observe h) [ 0.0; 5.0; 5.0; 123.0; 10_000.0 ];
  let v = List.assoc "h" (Metrics.snapshot reg) in
  let text = Json.to_string ~pretty:false (Metrics.value_to_json v) in
  checki "canonical +Inf overflow bound" 1
    (count_substring "{\"le\":\"+Inf\",\"count\":0}" text);
  checki "no nulls" 0 (count_substring "null" text);
  let decoded =
    match Result.bind (Json.of_string text) Metrics.value_of_json with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  (match (v, decoded) with
  | ( Metrics.Histogram { count; sum; min; max; zero; buckets; _ },
      Metrics.Histogram
        { count = c'; sum = s'; min = mn'; max = mx'; zero = z'; buckets = b'; _ } )
    ->
      checki "count" count c';
      checkf "sum" sum s';
      checkf "min" min mn';
      checkf "max" max mx';
      checki "zero bucket" zero z';
      checki "bucket list" (List.length buckets) (List.length b')
  | _ -> Alcotest.fail "expected histograms");
  List.iter
    (fun q ->
      checkf
        (Printf.sprintf "q=%.2f re-derives identically" q)
        (Option.get (Metrics.value_quantile v q))
        (Option.get (Metrics.value_quantile decoded q)))
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ]

(* ---------------- qcheck properties ---------------- *)

let ops_gen =
  (* A registry "program": counters and integer-valued histogram streams
     (float sums stay exact below 2^53, so merge equality is bit-exact).
     Gauges are excluded by design — their merged [last] takes the
     source's value, which is deterministic only for a fixed merge
     order. *)
  QCheck2.Gen.(
    list_size (int_range 0 60)
      (triple bool (int_range 0 2) (int_range 1 1_000_000)))

let build ops =
  let r = Metrics.create () in
  List.iter
    (fun (is_hist, idx, v) ->
      if is_hist then
        Metrics.observe
          (Metrics.histogram r (Printf.sprintf "h%d" idx))
          (float_of_int v)
      else Metrics.incr ~by:(v mod 100) (Metrics.counter r (Printf.sprintf "c%d" idx)))
    ops;
  r

let reg_json r = Json.to_string ~pretty:false (Metrics.to_json r)

let merged l =
  let d = Metrics.create () in
  List.iter (fun r -> Metrics.merge ~into:d r) l;
  d

let prop_merge_commutative =
  QCheck2.Test.make ~name:"metrics: merge is commutative" ~count:100
    QCheck2.Gen.(pair ops_gen ops_gen)
    (fun (a, b) ->
      reg_json (merged [ build a; build b ])
      = reg_json (merged [ build b; build a ]))

let prop_merge_associative =
  QCheck2.Test.make ~name:"metrics: merge is associative" ~count:100
    QCheck2.Gen.(triple ops_gen ops_gen ops_gen)
    (fun (a, b, c) ->
      let left = merged [ build a; build b; build c ] in
      let right = merged [ build a; merged [ build b; build c ] ] in
      reg_json left = reg_json right)

let prop_merge_identity =
  QCheck2.Test.make ~name:"metrics: empty registry is the merge identity"
    ~count:100 ops_gen
    (fun a ->
      let r = build a in
      Metrics.merge ~into:r (Metrics.create ());
      reg_json r = reg_json (build a)
      && reg_json (merged [ build a ]) = reg_json (build a))

let prop_quantile_error_bound =
  QCheck2.Test.make ~name:"metrics: quantile within alpha relative error"
    ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 200) (int_range 1 1_000_000))
        (float_range 0.0 1.0))
    (fun (vs, q) ->
      let reg = Metrics.create () in
      let h = Metrics.histogram reg "h" in
      List.iter (fun v -> Metrics.observe h (float_of_int v)) vs;
      let sorted = List.sort compare vs in
      let rank = int_of_float (q *. float_of_int (List.length vs - 1)) in
      let true_v = float_of_int (List.nth sorted rank) in
      let est = Option.get (Metrics.quantile h q) in
      Float.abs (est -. true_v) /. true_v
      <= Metrics.histogram_alpha h +. 1e-9)

(* ---------------- Obs spans ---------------- *)

let span_nesting () =
  let clock, advance = fake_clock () in
  let obs = Obs.create ~clock () in
  let o = Some obs in
  let instr = ref 100 in
  Obs.span o "outer"
    ~instructions:(fun () -> !instr)
    (fun () ->
      advance 0.5;
      Obs.span o "inner-1" (fun () ->
          advance 0.25;
          instr := !instr + 7);
      Obs.span o "inner-2" ~attrs:[ ("k", Json.Int 3) ] (fun () -> advance 0.125));
  match Obs.spans obs with
  | [ outer; i1; i2 ] ->
      checks "start order" "outer" outer.Obs.name;
      checks "then inner-1" "inner-1" i1.Obs.name;
      checks "then inner-2" "inner-2" i2.Obs.name;
      checkb "root has no parent" true (outer.Obs.parent = None);
      checkb "inner-1 under outer" true (i1.Obs.parent = Some outer.Obs.id);
      checkb "inner-2 under outer" true (i2.Obs.parent = Some outer.Obs.id);
      checki "root depth" 0 outer.Obs.depth;
      checki "child depth" 1 i1.Obs.depth;
      checki "default track" 0 outer.Obs.track;
      checkf "outer start" 0.0 outer.Obs.start_s;
      checkf "inner-1 start" 0.5 i1.Obs.start_s;
      checkf "inner-2 start" 0.75 i2.Obs.start_s;
      checkf "inner-1 duration" 0.25 i1.Obs.dur_s;
      checkf "inner-2 duration" 0.125 i2.Obs.dur_s;
      checkf "outer duration covers children" 0.875 outer.Obs.dur_s;
      checkb "instruction delta" true (outer.Obs.sp_instructions = Some 7);
      checkb "attrs kept" true (i2.Obs.attrs = [ ("k", Json.Int 3) ]);
      checkb "all closed" true
        (List.for_all (fun sp -> sp.Obs.closed) (Obs.spans obs))
  | l -> Alcotest.fail (Printf.sprintf "expected 3 spans, got %d" (List.length l))

let span_closes_on_exception () =
  let clock, advance = fake_clock () in
  let obs = Obs.create ~clock () in
  let o = Some obs in
  (try
     Obs.span o "boom" (fun () ->
         advance 1.0;
         failwith "inner failure")
   with Failure _ -> ());
  match Obs.spans obs with
  | [ sp ] ->
      checkb "closed despite raise" true sp.Obs.closed;
      checkf "duration recorded" 1.0 sp.Obs.dur_s
  | _ -> Alcotest.fail "expected exactly one span"

let span_add_attrs_innermost () =
  let clock, _ = fake_clock () in
  let obs = Obs.create ~clock () in
  let o = Some obs in
  Obs.span o "outer" (fun () ->
      Obs.span o "inner" (fun () -> Obs.add_attrs o [ ("x", Json.Int 1) ]));
  let inner =
    List.find (fun sp -> sp.Obs.name = "inner") (Obs.spans obs)
  and outer =
    List.find (fun sp -> sp.Obs.name = "outer") (Obs.spans obs)
  in
  checkb "attrs land on the innermost open span" true
    (inner.Obs.attrs = [ ("x", Json.Int 1) ]);
  checkb "not on the parent" true (outer.Obs.attrs = [])

let span_gc_delta () =
  (* Real clock: the span allocates heavily, so the recorded gc delta must
     show minor-heap traffic and the top-level close must refresh the
     allocation-rate gauge. *)
  let obs = Obs.create () in
  let sink = ref 0.0 in
  Obs.span (Some obs) "alloc" (fun () ->
      for _ = 1 to 10_000 do
        sink := !sink +. Array.fold_left ( +. ) 0.0 (Array.make 257 1.0)
      done);
  ignore (Sys.opaque_identity !sink);
  (match (List.hd (Obs.spans obs)).Obs.sp_gc with
  | Some gd ->
      checkb "minor words allocated" true (gd.Obs.gd_minor_words > 0.0);
      checkb "collection deltas are non-negative" true
        (gd.Obs.gd_minor_collections >= 0 && gd.Obs.gd_major_collections >= 0)
  | None -> Alcotest.fail "closed span carries a gc delta");
  match List.assoc_opt "runtime.alloc_rate" (Metrics.snapshot (Obs.metrics obs)) with
  | Some (Metrics.Gauge { last; samples; _ }) ->
      checkb "alloc rate sampled once" true (samples >= 1);
      checkb "alloc rate positive" true (last > 0.0)
  | _ -> Alcotest.fail "expected the runtime.alloc_rate gauge"

(* ---------------- adopt / tracks ---------------- *)

let adopt_grafts_worker_spans () =
  let clock, advance = fake_clock () in
  let parent = Obs.create ~clock () in
  Obs.span (Some parent) "root" (fun () -> advance 0.25);
  advance 0.75 (* clock now 1.0 *);
  let child = Obs.create ~clock ~epoch:(Obs.epoch parent) ~track:3 () in
  Obs.span (Some child) "work" (fun () ->
      advance 0.25;
      Obs.span (Some child) "work.inner" (fun () -> advance 0.25));
  Obs.adopt parent ~from:child;
  let spans = Obs.spans parent in
  checki "own span plus two adopted" 3 (List.length spans);
  let by_name n = List.find (fun (sp : Obs.span) -> sp.Obs.name = n) spans in
  let root = by_name "root" and w = by_name "work" and wi = by_name "work.inner" in
  checki "adopted spans keep their track" 3 w.Obs.track;
  checki "own spans stay on track 0" 0 root.Obs.track;
  checkf "shared epoch: timestamps comparable" 1.0 w.Obs.start_s;
  checkf "nested start preserved" 1.25 wi.Obs.start_s;
  checkb "adopted ids don't collide" true (w.Obs.id <> root.Obs.id);
  checkb "adopted parent links remapped" true (wi.Obs.parent = Some w.Obs.id);
  (* Every parent id must resolve within the merged context. *)
  let ids = List.map (fun (sp : Obs.span) -> sp.Obs.id) spans in
  checkb "span tree is well-formed" true
    (List.for_all
       (fun (sp : Obs.span) ->
         match sp.Obs.parent with None -> true | Some p -> List.mem p ids)
       spans);
  let tree = Obs.span_tree_string parent in
  checkb "tree labels foreign tracks" true (count_substring "[t3]" tree >= 1)

let adopt_rejects_open_spans () =
  let clock, _ = fake_clock () in
  let parent = Obs.create ~clock () in
  let child = Obs.create ~clock ~epoch:(Obs.epoch parent) ~track:1 () in
  Obs.span (Some child) "open" (fun () ->
      let raised =
        try
          Obs.adopt parent ~from:child;
          false
        with Invalid_argument _ -> true
      in
      checkb "adopting a context with open spans raises" true raised)

(* ---------------- Disabled path ---------------- *)

let disabled_is_free () =
  (* With obs = None every entry point must be a no-op: no event objects,
     no closures, no boxing on the minor heap. One warm-up pass absorbs
     any one-time allocation, then a measured pass of 10k iterations must
     stay within noise (a strictly per-event allocation would cost >=20k
     words). *)
  let f = fun () -> 7 in
  let work () =
    for k = 1 to 10_000 do
      Obs.count None "vm.calls" k;
      Obs.observe None "vm.shadow_stack.depth" 3.0;
      Obs.set_gauge None "alloc.chunks.spare" 2.0;
      Obs.event None ~name:"cache.l1.misses" 4.0;
      Obs.add_attrs None [];
      ignore (Obs.span None "s" f : int)
    done
  in
  work ();
  let before = Gc.minor_words () in
  work ();
  let delta = Gc.minor_words () -. before in
  checkb
    (Printf.sprintf "no per-event allocation when disabled (%.0f words)" delta)
    true
    (delta < 256.0)

(* ---------------- JSONL trace ---------------- *)

let jsonl_trace () =
  let clock, advance = fake_clock () in
  let buf = Buffer.create 512 in
  let obs = Obs.create ~clock ~sink:(Trace.to_buffer buf) () in
  let o = Some obs in
  Obs.span o "run" (fun () ->
      Obs.count o "events.total" 3;
      Obs.event o ~name:"series.x" ~attrs:[ ("k", Json.Int 1) ] 42.0;
      Obs.span o "inner" (fun () -> advance 1.0));
  Obs.finish obs;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  checki "one JSONL line per emitted event"
    (Trace.emitted (Option.get (Obs.sink obs)))
    (List.length lines);
  (* Each line is one compact JSON object with a type tag; no pretty
     newlines may leak inside a record. *)
  List.iteri
    (fun k l ->
      checkb "object per line" true
        (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}');
      checkb "typed" true
        (count_substring "\"type\":\"" l = 1);
      checkb "sequenced" true (count_substring "\"seq\":" l = 1);
      (* The monotonic seq matches the line's position in the file. *)
      checkb "seq matches line order" true
        (count_substring (Printf.sprintf "\"seq\":%d}" k) l = 1))
    lines;
  let whole = Buffer.contents buf in
  checki "two span events" 2 (count_substring "\"type\":\"span\"" whole);
  checki "span events carry their track" 2 (count_substring "\"track\":0" whole);
  checki "span events carry gc deltas" 2 (count_substring "\"gc\":{" whole);
  checki "one metric series point" 1 (count_substring "\"type\":\"metric\"" whole);
  (* events.total plus the runtime.alloc_rate gauge the run span set. *)
  checki "one summary per registered metric" 2
    (count_substring "\"type\":\"summary\"" whole);
  (* Span events reference their parent by id. *)
  checki "inner span names its parent" 1
    (count_substring "\"name\":\"inner\"" whole)

let finish_closes_open_spans () =
  let clock, _ = fake_clock () in
  let buf = Buffer.create 256 in
  let obs = Obs.create ~clock ~sink:(Trace.to_buffer buf) () in
  (* Simulate a failed run: enter spans without unwinding. *)
  (try
     Obs.span (Some obs) "outer" (fun () ->
         Obs.span (Some obs) "inner" (fun () -> raise Exit))
   with Exit -> ());
  Obs.finish obs;
  checkb "all spans closed after finish" true
    (List.for_all (fun sp -> sp.Obs.closed) (Obs.spans obs))

let empty_metrics_export_no_nulls () =
  (* Gauges/histograms that were registered but never updated carry
     [neg_infinity] maxima internally; the JSONL summary must report
     [samples = 0] / [count = 0] and omit max/last rather than emit JSON
     nulls that choke downstream trace consumers. *)
  let buf = Buffer.create 512 in
  let obs = Obs.create ~sink:(Trace.to_buffer buf) () in
  let reg = Obs.metrics obs in
  ignore (Metrics.gauge reg "g.empty" : Metrics.gauge);
  ignore (Metrics.histogram reg "h.empty" : Metrics.histogram);
  Metrics.set (Metrics.gauge reg "g.live") 2.5;
  Obs.finish obs;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  let line_of name =
    List.find (fun l -> count_substring (Printf.sprintf "%S" name) l = 1) lines
  in
  let g = line_of "g.empty" in
  checki "empty gauge: no null" 0 (count_substring "null" g);
  checki "empty gauge: samples 0" 1 (count_substring "\"samples\":0" g);
  checki "empty gauge: no max" 0 (count_substring "\"max\"" g);
  checki "empty gauge: no last value" 0 (count_substring "\"value\"" g);
  let h = line_of "h.empty" in
  checki "empty histogram: no null" 0 (count_substring "null" h);
  checki "empty histogram: count 0" 1 (count_substring "\"count\":0,\"sum\"" h);
  checki "empty histogram: no max" 0 (count_substring "\"max\"" h);
  let live = line_of "g.live" in
  checki "updated gauge still carries max" 1 (count_substring "\"max\"" live);
  checki "updated gauge still carries value" 1 (count_substring "\"value\"" live)

(* ---------------- Chrome trace export ---------------- *)

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let chrome_trace_export () =
  let clock, advance = fake_clock () in
  let parent = Obs.create ~clock () in
  Obs.span (Some parent) "root" (fun () -> advance 0.25);
  advance 0.75;
  let child = Obs.create ~clock ~epoch:(Obs.epoch parent) ~track:3 () in
  Obs.span (Some child) "work" (fun () -> advance 0.5);
  Obs.adopt parent ~from:child;
  let j = Trace_event.to_json parent in
  checks "display unit" "ms" (ok (Json.get_string "displayTimeUnit" j));
  let events = ok (Json.get_list "traceEvents" j) in
  let phase e = ok (Json.get_string "ph" e) in
  let args e =
    match Json.mem "args" e with
    | Some a -> a
    | None -> Alcotest.fail "event without args"
  in
  let metadata = List.filter (fun e -> phase e = "M") events in
  let complete = List.filter (fun e -> phase e = "X") events in
  checki "metadata: process_name + one thread_name per track" 3
    (List.length metadata);
  let thread_names =
    List.filter_map
      (fun e ->
        if ok (Json.get_string "name" e) = "thread_name" then
          Some (ok (Json.get_int "tid" e), ok (Json.get_string "name" (args e)))
        else None)
      metadata
  in
  checkb "track 0 is main" true (List.assoc 0 thread_names = "main");
  checkb "track 3 is its domain" true (List.assoc 3 thread_names = "domain-3");
  checki "one complete event per span" 2 (List.length complete);
  let work =
    List.find (fun e -> ok (Json.get_string "name" e) = "work") complete
  in
  checki "worker span on its own lane" 3 (ok (Json.get_int "tid" work));
  checkf "ts in microseconds" 1e6 (ok (Json.get_float "ts" work));
  checkf "dur in microseconds" 0.5e6 (ok (Json.get_float "dur" work));
  (* Every parent_id must resolve to a span_id in the same file. *)
  let arg_objs = List.map args complete in
  let ids = List.map (fun a -> ok (Json.get_int "span_id" a)) arg_objs in
  checkb "parent ids resolve" true
    (List.for_all
       (fun a ->
         match Json.mem "parent_id" a with
         | Some (Json.Int p) -> List.mem p ids
         | Some Json.Null | None -> true
         | Some _ -> false)
       arg_objs)

(* ---------------- Reporting ---------------- *)

let reporting_strings () =
  let clock, advance = fake_clock () in
  let obs = Obs.create ~clock () in
  let o = Some obs in
  Obs.span o "outer" (fun () ->
      advance 0.002;
      Obs.count o "hits" 12;
      Obs.observe o "depth" 3.0);
  let tree = Obs.span_tree_string obs in
  checkb "tree names the span" true (count_substring "outer" tree = 1);
  let top = Obs.top_metrics_string ~n:1 obs in
  checkb "top-1 keeps the counter" true (count_substring "hits" top = 1);
  checkb "top-1 drops the rest" true (count_substring "depth" top = 0)

let tc name f = Alcotest.test_case name `Quick f

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_merge_commutative;
      prop_merge_associative;
      prop_merge_identity;
      prop_quantile_error_bound;
    ]

let suite =
  [
    tc "metrics: counter" metrics_counter;
    tc "metrics: kind mismatch raises" metrics_kind_mismatch;
    tc "metrics: gauge last/max/samples" metrics_gauge;
    tc "metrics: sketch bucketing and zero bucket" sketch_basics;
    tc "metrics: sketch quantile error bound" sketch_relative_error;
    tc "metrics: sketch merge is exact" sketch_merge_exact;
    tc "metrics: merge alpha mismatch raises" sketch_merge_alpha_mismatch;
    tc "metrics: histogram JSON round-trip via +Inf" sketch_json_roundtrip;
    tc "obs: span nesting and ordering" span_nesting;
    tc "obs: span closes on exception" span_closes_on_exception;
    tc "obs: add_attrs targets innermost" span_add_attrs_innermost;
    tc "obs: spans carry gc deltas" span_gc_delta;
    tc "obs: adopt grafts worker spans" adopt_grafts_worker_spans;
    tc "obs: adopt rejects open spans" adopt_rejects_open_spans;
    tc "obs: disabled path allocates nothing" disabled_is_free;
    tc "obs: JSONL trace parses line-by-line" jsonl_trace;
    tc "obs: finish closes open spans" finish_closes_open_spans;
    tc "obs: empty metrics export without nulls" empty_metrics_export_no_nulls;
    tc "obs: Chrome trace export" chrome_trace_export;
    tc "obs: reporting strings" reporting_strings;
  ]
  @ qsuite
