(* Tests for halo_obs: Metrics, Trace, Obs. *)

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checks = check Alcotest.string
let checkf msg = check (Alcotest.float 1e-9) msg

(* A deterministic clock for span timing tests. *)
let fake_clock () =
  let now = ref 0.0 in
  ((fun () -> !now), fun dt -> now := !now +. dt)

(* ---------------- Metrics ---------------- *)

let metrics_counter () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "c" in
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  checki "accumulates" 42 (Metrics.counter_value c);
  checks "name" "c" (Metrics.counter_name c);
  checkb "registration is idempotent" true (c == Metrics.counter reg "c")

let metrics_kind_mismatch () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "c" : Metrics.counter);
  let raised =
    try
      ignore (Metrics.gauge reg "c" : Metrics.gauge);
      false
    with Invalid_argument _ -> true
  in
  checkb "re-registering as another kind raises" true raised

let metrics_gauge () =
  let reg = Metrics.create () in
  let g = Metrics.gauge reg "g" in
  List.iter (Metrics.set g) [ 1.0; 5.0; 2.0 ];
  checkf "last wins" 2.0 (Metrics.gauge_value g);
  match List.assoc "g" (Metrics.snapshot reg) with
  | Metrics.Gauge { last; max; samples } ->
      checkf "last" 2.0 last;
      checkf "running max" 5.0 max;
      checki "sample count" 3 samples
  | _ -> Alcotest.fail "expected a gauge"

let metrics_histogram_bucketing () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 1.0; 2.0; 4.0 |] reg "h" in
  (* An observation lands in the first bucket whose bound is >= it. *)
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 4.0; 100.0 ];
  checki "count" 5 (Metrics.histogram_count h);
  checkf "sum" 107.0 (Metrics.histogram_sum h);
  match Metrics.histogram_buckets h with
  | [ (b0, c0); (b1, c1); (b2, c2); (b3, c3) ] ->
      checkf "bound 0" 1.0 b0;
      checki "0.5 and 1.0 land at <=1" 2 c0;
      checkf "bound 1" 2.0 b1;
      checki "1.5 lands at <=2" 1 c1;
      checkf "bound 2" 4.0 b2;
      checki "4.0 lands at <=4 (inclusive)" 1 c2;
      checkb "overflow bound is +inf" true (b3 = infinity);
      checki "100 overflows" 1 c3
  | l -> Alcotest.fail (Printf.sprintf "expected 4 buckets, got %d" (List.length l))

let metrics_default_buckets () =
  (* Exponential ladder 1, 2, 4, ..., 2^15. *)
  checki "16 bounds" 16 (Array.length Metrics.default_buckets);
  Array.iteri
    (fun k b -> checkf "power of two" (float_of_int (1 lsl k)) b)
    Metrics.default_buckets

(* ---------------- Obs spans ---------------- *)

let span_nesting () =
  let clock, advance = fake_clock () in
  let obs = Obs.create ~clock () in
  let o = Some obs in
  let instr = ref 100 in
  Obs.span o "outer"
    ~instructions:(fun () -> !instr)
    (fun () ->
      advance 0.5;
      Obs.span o "inner-1" (fun () ->
          advance 0.25;
          instr := !instr + 7);
      Obs.span o "inner-2" ~attrs:[ ("k", Json.Int 3) ] (fun () -> advance 0.125));
  match Obs.spans obs with
  | [ outer; i1; i2 ] ->
      checks "start order" "outer" outer.Obs.name;
      checks "then inner-1" "inner-1" i1.Obs.name;
      checks "then inner-2" "inner-2" i2.Obs.name;
      checkb "root has no parent" true (outer.Obs.parent = None);
      checkb "inner-1 under outer" true (i1.Obs.parent = Some outer.Obs.id);
      checkb "inner-2 under outer" true (i2.Obs.parent = Some outer.Obs.id);
      checki "root depth" 0 outer.Obs.depth;
      checki "child depth" 1 i1.Obs.depth;
      checkf "outer start" 0.0 outer.Obs.start_s;
      checkf "inner-1 start" 0.5 i1.Obs.start_s;
      checkf "inner-2 start" 0.75 i2.Obs.start_s;
      checkf "inner-1 duration" 0.25 i1.Obs.dur_s;
      checkf "inner-2 duration" 0.125 i2.Obs.dur_s;
      checkf "outer duration covers children" 0.875 outer.Obs.dur_s;
      checkb "instruction delta" true (outer.Obs.sp_instructions = Some 7);
      checkb "attrs kept" true (i2.Obs.attrs = [ ("k", Json.Int 3) ]);
      checkb "all closed" true
        (List.for_all (fun sp -> sp.Obs.closed) (Obs.spans obs))
  | l -> Alcotest.fail (Printf.sprintf "expected 3 spans, got %d" (List.length l))

let span_closes_on_exception () =
  let clock, advance = fake_clock () in
  let obs = Obs.create ~clock () in
  let o = Some obs in
  (try
     Obs.span o "boom" (fun () ->
         advance 1.0;
         failwith "inner failure")
   with Failure _ -> ());
  match Obs.spans obs with
  | [ sp ] ->
      checkb "closed despite raise" true sp.Obs.closed;
      checkf "duration recorded" 1.0 sp.Obs.dur_s
  | _ -> Alcotest.fail "expected exactly one span"

let span_add_attrs_innermost () =
  let clock, _ = fake_clock () in
  let obs = Obs.create ~clock () in
  let o = Some obs in
  Obs.span o "outer" (fun () ->
      Obs.span o "inner" (fun () -> Obs.add_attrs o [ ("x", Json.Int 1) ]));
  let inner =
    List.find (fun sp -> sp.Obs.name = "inner") (Obs.spans obs)
  and outer =
    List.find (fun sp -> sp.Obs.name = "outer") (Obs.spans obs)
  in
  checkb "attrs land on the innermost open span" true
    (inner.Obs.attrs = [ ("x", Json.Int 1) ]);
  checkb "not on the parent" true (outer.Obs.attrs = [])

(* ---------------- Disabled path ---------------- *)

let disabled_is_free () =
  (* With obs = None every entry point must be a no-op: no event objects,
     no closures, no boxing on the minor heap. One warm-up pass absorbs
     any one-time allocation, then a measured pass of 10k iterations must
     stay within noise (a strictly per-event allocation would cost >=20k
     words). *)
  let f = fun () -> 7 in
  let work () =
    for k = 1 to 10_000 do
      Obs.count None "vm.calls" k;
      Obs.observe None "vm.shadow_stack.depth" 3.0;
      Obs.set_gauge None "alloc.chunks.spare" 2.0;
      Obs.event None ~name:"cache.l1.misses" 4.0;
      Obs.add_attrs None [];
      ignore (Obs.span None "s" f : int)
    done
  in
  work ();
  let before = Gc.minor_words () in
  work ();
  let delta = Gc.minor_words () -. before in
  checkb
    (Printf.sprintf "no per-event allocation when disabled (%.0f words)" delta)
    true
    (delta < 256.0)

(* ---------------- JSONL trace ---------------- *)

let count_substring needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go from acc =
    if from + n > h then acc
    else if String.sub hay from n = needle then go (from + n) (acc + 1)
    else go (from + 1) acc
  in
  go 0 0

let jsonl_trace () =
  let clock, advance = fake_clock () in
  let buf = Buffer.create 512 in
  let obs = Obs.create ~clock ~sink:(Trace.to_buffer buf) () in
  let o = Some obs in
  Obs.span o "run" (fun () ->
      Obs.count o "events.total" 3;
      Obs.event o ~name:"series.x" ~attrs:[ ("k", Json.Int 1) ] 42.0;
      Obs.span o "inner" (fun () -> advance 1.0));
  Obs.finish obs;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  checki "one JSONL line per emitted event"
    (Trace.emitted (Option.get (Obs.sink obs)))
    (List.length lines);
  (* Each line is one compact JSON object with a type tag; no pretty
     newlines may leak inside a record. *)
  List.iteri
    (fun k l ->
      checkb "object per line" true
        (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}');
      checkb "typed" true
        (count_substring "\"type\":\"" l = 1);
      checkb "sequenced" true (count_substring "\"seq\":" l = 1);
      (* The monotonic seq matches the line's position in the file. *)
      checkb "seq matches line order" true
        (count_substring (Printf.sprintf "\"seq\":%d}" k) l = 1))
    lines;
  let whole = Buffer.contents buf in
  checki "two span events" 2 (count_substring "\"type\":\"span\"" whole);
  checki "one metric series point" 1 (count_substring "\"type\":\"metric\"" whole);
  checki "one summary per registered metric" 1
    (count_substring "\"type\":\"summary\"" whole);
  (* Span events reference their parent by id. *)
  checki "inner span names its parent" 1
    (count_substring "\"name\":\"inner\"" whole)

let finish_closes_open_spans () =
  let clock, _ = fake_clock () in
  let buf = Buffer.create 256 in
  let obs = Obs.create ~clock ~sink:(Trace.to_buffer buf) () in
  (* Simulate a failed run: enter spans without unwinding. *)
  (try
     Obs.span (Some obs) "outer" (fun () ->
         Obs.span (Some obs) "inner" (fun () -> raise Exit))
   with Exit -> ());
  Obs.finish obs;
  checkb "all spans closed after finish" true
    (List.for_all (fun sp -> sp.Obs.closed) (Obs.spans obs))

let empty_metrics_export_no_nulls () =
  (* Gauges/histograms that were registered but never updated carry
     [neg_infinity] maxima internally; the JSONL summary must report
     [samples = 0] / [count = 0] and omit max/last rather than emit JSON
     nulls that choke downstream trace consumers. *)
  let buf = Buffer.create 512 in
  let obs = Obs.create ~sink:(Trace.to_buffer buf) () in
  let reg = Obs.metrics obs in
  ignore (Metrics.gauge reg "g.empty" : Metrics.gauge);
  ignore (Metrics.histogram reg "h.empty" : Metrics.histogram);
  Metrics.set (Metrics.gauge reg "g.live") 2.5;
  Obs.finish obs;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  let line_of name =
    List.find (fun l -> count_substring (Printf.sprintf "%S" name) l = 1) lines
  in
  let g = line_of "g.empty" in
  checki "empty gauge: no null" 0 (count_substring "null" g);
  checki "empty gauge: samples 0" 1 (count_substring "\"samples\":0" g);
  checki "empty gauge: no max" 0 (count_substring "\"max\"" g);
  checki "empty gauge: no last value" 0 (count_substring "\"value\"" g);
  let h = line_of "h.empty" in
  checki "empty histogram: no null" 0 (count_substring "null" h);
  checki "empty histogram: count 0" 1 (count_substring "\"count\":0,\"sum\"" h);
  checki "empty histogram: no max" 0 (count_substring "\"max\"" h);
  let live = line_of "g.live" in
  checki "updated gauge still carries max" 1 (count_substring "\"max\"" live);
  checki "updated gauge still carries value" 1 (count_substring "\"value\"" live)

let reporting_strings () =
  let clock, advance = fake_clock () in
  let obs = Obs.create ~clock () in
  let o = Some obs in
  Obs.span o "outer" (fun () ->
      advance 0.002;
      Obs.count o "hits" 12;
      Obs.observe o "depth" 3.0);
  let tree = Obs.span_tree_string obs in
  checkb "tree names the span" true (count_substring "outer" tree = 1);
  let top = Obs.top_metrics_string ~n:1 obs in
  checkb "top-1 keeps the counter" true (count_substring "hits" top = 1);
  checkb "top-1 drops the rest" true (count_substring "depth" top = 0)

let tc name f = Alcotest.test_case name `Quick f

let suite =
  [
    tc "metrics: counter" metrics_counter;
    tc "metrics: kind mismatch raises" metrics_kind_mismatch;
    tc "metrics: gauge last/max/samples" metrics_gauge;
    tc "metrics: histogram bucketing" metrics_histogram_bucketing;
    tc "metrics: default buckets ladder" metrics_default_buckets;
    tc "obs: span nesting and ordering" span_nesting;
    tc "obs: span closes on exception" span_closes_on_exception;
    tc "obs: add_attrs targets innermost" span_add_attrs_innermost;
    tc "obs: disabled path allocates nothing" disabled_is_free;
    tc "obs: JSONL trace parses line-by-line" jsonl_trace;
    tc "obs: finish closes open spans" finish_closes_open_spans;
    tc "obs: empty metrics export without nulls" empty_metrics_export_no_nulls;
    tc "obs: reporting strings" reporting_strings;
  ]
