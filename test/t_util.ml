(* Tests for halo_util: Rng, Stats, Bitset, Table, Dot. *)

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checkf msg = check (Alcotest.float 1e-9) msg

(* ---------------- Rng ---------------- *)

let rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next a) (Rng.next b)
  done

let rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  checkb "different seeds differ" false (Rng.next a = Rng.next b)

let rng_int_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 13 in
    checkb "in range" true (v >= 0 && v < 13)
  done

let rng_int_in_bounds () =
  let r = Rng.create ~seed:8 in
  for _ = 1 to 1_000 do
    let v = Rng.int_in r (-5) 5 in
    checkb "in closed range" true (v >= -5 && v <= 5)
  done

let rng_int_in_singleton () =
  let r = Rng.create ~seed:9 in
  for _ = 1 to 100 do
    checki "collapsed range" 5 (Rng.int_in r 5 5)
  done

let rng_int_in_empty_range_rejected () =
  let r = Rng.create ~seed:1 in
  Alcotest.check_raises "lo > hi"
    (Invalid_argument "Rng.int_in: empty range [3, 2]") (fun () ->
      ignore (Rng.int_in r 3 2))

let rng_int_in_full_domain () =
  (* [min_int, max_int] makes [hi - lo] wrap; the draw must neither raise
     nor loop, and over a few hundred draws both signs appear. *)
  let r = Rng.create ~seed:10 in
  let neg = ref false and pos = ref false in
  for _ = 1 to 200 do
    if Rng.int_in r min_int max_int < 0 then neg := true else pos := true
  done;
  checkb "both signs seen" true (!neg && !pos)

let rng_int_in_wide_positive () =
  (* [0, max_int] holds max_int + 1 values, so span + 1 overflows. *)
  let r = Rng.create ~seed:11 in
  for _ = 1 to 200 do
    checkb "non-negative" true (Rng.int_in r 0 max_int >= 0)
  done

let rng_int_in_wide_negative () =
  let r = Rng.create ~seed:12 in
  for _ = 1 to 200 do
    checkb "non-positive" true (Rng.int_in r min_int 0 <= 0)
  done

let rng_int_in_near_max_int () =
  let r = Rng.create ~seed:13 in
  for _ = 1 to 200 do
    let v = Rng.int_in r (max_int - 3) max_int in
    checkb "no wraparound" true (v >= max_int - 3)
  done;
  let v = Rng.int_in r min_int (min_int + 2) in
  checkb "bottom of domain" true (v <= min_int + 2)

let rng_int_rejects_nonpositive () =
  let r = Rng.create ~seed:1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let rng_float_bounds () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 1_000 do
    let v = Rng.float r 2.5 in
    checkb "in range" true (v >= 0.0 && v < 2.5)
  done

let rng_split_independent () =
  let a = Rng.create ~seed:5 in
  let b = Rng.split a in
  checkb "split differs from parent" false (Rng.next a = Rng.next b)

let rng_split_labelled_stable () =
  (* A labelled split reads but does not advance the parent: the same
     label always denotes the same substream, and distinct labels give
     distinct streams. *)
  let parent = Rng.create ~seed:42 in
  let a1 = Rng.next (Rng.split ~label:"alpha" parent) in
  let b1 = Rng.next (Rng.split ~label:"beta" parent) in
  let a2 = Rng.next (Rng.split ~label:"alpha" parent) in
  checkb "distinct labels, distinct streams" false (a1 = b1);
  check Alcotest.int64 "same label denotes one stream" a1 a2

let rng_split_labelled_order_independent () =
  let draws seed order =
    let parent = Rng.create ~seed in
    List.sort compare
      (List.map (fun l -> (l, Rng.next (Rng.split ~label:l parent))) order)
  in
  check
    Alcotest.(list (pair string int64))
    "derivation order irrelevant"
    (draws 7 [ "a"; "b"; "c" ])
    (draws 7 [ "c"; "a"; "b" ]);
  (* The unlabelled form still advances the parent, so successive splits
     keep yielding fresh streams. *)
  let parent = Rng.create ~seed:7 in
  checkb "unlabelled splits advance the parent" false
    (Rng.next (Rng.split parent) = Rng.next (Rng.split parent))

let rng_shuffle_permutation () =
  let r = Rng.create ~seed:11 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "is a permutation" (Array.init 50 Fun.id) sorted

let rng_choose_uniform_support () =
  let r = Rng.create ~seed:13 in
  let seen = Array.make 4 false in
  for _ = 1 to 1_000 do
    seen.(Rng.choose r [| 0; 1; 2; 3 |]) <- true
  done;
  checkb "all elements reachable" true (Array.for_all Fun.id seen)

let rng_geometric_mean () =
  let r = Rng.create ~seed:17 in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Rng.geometric r ~p:0.5
  done;
  let mean = float_of_int !sum /. float_of_int n in
  (* mean of Geom(0.5) failures = 1.0 *)
  checkb "geometric mean plausible" true (mean > 0.8 && mean < 1.2)

(* ---------------- Stats ---------------- *)

let stats_median_odd () = checkf "median odd" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |])

let stats_median_even () =
  checkf "median even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |])

let stats_percentiles () =
  let xs = Array.init 101 float_of_int in
  checkf "p25" 25.0 (Stats.percentile xs 25.0);
  checkf "p75" 75.0 (Stats.percentile xs 75.0);
  checkf "p0" 0.0 (Stats.percentile xs 0.0);
  checkf "p100" 100.0 (Stats.percentile xs 100.0)

let stats_mean_stddev () =
  checkf "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  checkf "stddev" 1.0 (Stats.stddev [| 1.0; 2.0; 3.0 |])

let stats_geomean () = checkf "geomean" 2.0 (Stats.geomean [| 1.0; 4.0 |])

let stats_empty_rejected () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty input")
    (fun () -> ignore (Stats.mean [||]))

let stats_summary_consistent () =
  let s = Stats.summarize [| 3.0; 1.0; 2.0; 4.0 |] in
  checkf "min" 1.0 s.Stats.min;
  checkf "max" 4.0 s.Stats.max;
  checkb "p25 <= median" true (s.Stats.p25 <= s.Stats.median);
  checkb "median <= p75" true (s.Stats.median <= s.Stats.p75)

let stats_nan_rejected () =
  (* NaN-contaminated quantiles are garbage under any sort order; the
     helpers must refuse rather than return a number. *)
  Alcotest.check_raises "percentile NaN"
    (Invalid_argument "Stats.percentile: NaN input") (fun () ->
      ignore (Stats.percentile [| 1.0; Float.nan; 2.0 |] 50.0));
  Alcotest.check_raises "median NaN"
    (Invalid_argument "Stats.percentile: NaN input") (fun () ->
      ignore (Stats.median [| Float.nan |]));
  Alcotest.check_raises "summarize NaN"
    (Invalid_argument "Stats.summarize: NaN input") (fun () ->
      ignore (Stats.summarize [| 0.0; Float.nan |]))

let stats_float_total_order () =
  (* Float.compare (not polymorphic compare) must order signed zeros and
     infinities numerically for quantile purposes. *)
  checkf "median around zero" 0.0
    (Stats.median [| Float.infinity; Float.neg_infinity; 0.0; -1.0; 1.0 |]);
  checkf "p0 is the min" Float.neg_infinity
    (Stats.percentile [| 1.0; Float.neg_infinity; 0.0 |] 0.0);
  checkf "p100 is the max" Float.infinity
    (Stats.percentile [| Float.infinity; 0.0; -3.5 |] 100.0)

(* ---------------- Bitset ---------------- *)

let bitset_set_get_clear () =
  let b = Bitset.create 70 in
  checkb "initially clear" false (Bitset.get b 69);
  Bitset.set b 69;
  checkb "set" true (Bitset.get b 69);
  checkb "neighbour untouched" false (Bitset.get b 68);
  Bitset.clear b 69;
  checkb "cleared" false (Bitset.get b 69)

let bitset_bounds () =
  let b = Bitset.create 8 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: index 8 out of bounds [0,8)")
    (fun () -> Bitset.set b 8)

let bitset_cardinal_tolist () =
  let b = Bitset.create 16 in
  List.iter (Bitset.set b) [ 0; 3; 7; 15 ];
  checki "cardinal" 4 (Bitset.cardinal b);
  check (Alcotest.list Alcotest.int) "to_list" [ 0; 3; 7; 15 ] (Bitset.to_list b)

let bitset_copy_independent () =
  let b = Bitset.create 8 in
  Bitset.set b 1;
  let c = Bitset.copy b in
  Bitset.clear b 1;
  checkb "copy unaffected" true (Bitset.get c 1)

let bitset_clear_all () =
  let b = Bitset.create 32 in
  List.iter (Bitset.set b) [ 1; 2; 30 ];
  Bitset.clear_all b;
  checki "empty" 0 (Bitset.cardinal b)

(* ---------------- Table ---------------- *)

let table_renders () =
  let t = Table.create ~title:"T" ~headers:[ "a"; "bb" ] () in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "yyyy"; "22" ];
  let s = Table.render t in
  checkb "has title" true (String.length s > 0 && String.sub s 0 1 = "T");
  checkb "contains row" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 0 && String.contains l 'y'))

let table_arity_checked () =
  let t = Table.create ~headers:[ "a"; "b" ] () in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only one" ])

let table_fmt_pct () =
  check Alcotest.string "pct" "+4.23%" (Table.fmt_pct 0.0423);
  check Alcotest.string "neg pct" "-10.00%" (Table.fmt_pct (-0.1))

let table_fmt_bytes () =
  check Alcotest.string "bytes" "512B" (Table.fmt_bytes 512);
  check Alcotest.string "kib" "2.00KiB" (Table.fmt_bytes 2048);
  check Alcotest.string "mib" "2.05MiB" (Table.fmt_bytes 2149581)

(* ---------------- Dot ---------------- *)

let dot_renders () =
  let nodes =
    [
      { Dot.id = 0; label = "a"; group = Some 0; accesses = 10 };
      { Dot.id = 1; label = "b\"q"; group = None; accesses = 5 };
    ]
  in
  let edges = [ { Dot.src = 0; dst = 1; weight = 3 } ] in
  let s = Dot.render nodes edges in
  checkb "graph header" true (String.length s >= 5 && String.sub s 0 5 = "graph");
  checkb "escapes quotes" true
    (let ok = ref false in
     String.iteri (fun k c -> if c = '\\' && s.[k + 1] = '"' then ok := true) s;
     !ok)

let dot_min_weight_hides () =
  let nodes = [ { Dot.id = 0; label = "a"; group = None; accesses = 1 } ] in
  let edges = [ { Dot.src = 0; dst = 0; weight = 1 } ] in
  let s = Dot.render ~min_weight:10 nodes edges in
  checkb "edge hidden" false
    (String.split_on_char '\n' s
    |> List.exists (fun l ->
           let has_dashdash = ref false in
           String.iteri
             (fun k c -> if c = '-' && k + 1 < String.length l && l.[k + 1] = '-' then has_dashdash := true)
             l;
           !has_dashdash))

let dot_group_color_stable () =
  check Alcotest.string "same group same color" (Dot.group_color 3) (Dot.group_color 3)

(* ---------------- qcheck properties ---------------- *)

let prop_percentile_monotone =
  QCheck2.Test.make ~name:"stats: percentile is monotone in p" ~count:200
    QCheck2.Gen.(
      pair (list_size (int_range 1 20) (float_range (-100.) 100.))
        (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (xs, (p1, p2)) ->
      let xs = Array.of_list xs in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-9)

let prop_bitset_roundtrip =
  QCheck2.Test.make ~name:"bitset: to_list after sets = sorted distinct sets"
    ~count:200
    QCheck2.Gen.(list_size (int_range 0 50) (int_range 0 63))
    (fun idxs ->
      let b = Bitset.create 64 in
      List.iter (Bitset.set b) idxs;
      Bitset.to_list b = List.sort_uniq compare idxs)

let prop_rng_int_range =
  QCheck2.Test.make ~name:"rng: int in [0, bound)" ~count:500
    QCheck2.Gen.(pair (int_range 1 1_000_000) int)
    (fun (bound, seed) ->
      let r = Rng.create ~seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

(* ---------------- Json ---------------- *)

let checks = check Alcotest.string

let json_escapes_specials () =
  checks "quote and backslash" "\"a\\\"b\\\\c\""
    (Json.to_string ~pretty:false (Json.String "a\"b\\c"));
  checks "named control escapes" "\"l1\\nl2\\rl3\\tend\""
    (Json.to_string ~pretty:false (Json.String "l1\nl2\rl3\tend"));
  (* Control chars without a short escape use \u00XX (RFC 8259 §7). *)
  checks "u-escaped control chars" "\"\\u0001\\u0000\\u001f\""
    (Json.to_string ~pretty:false (Json.String "\x01\x00\x1f"));
  (* 0x20 and above pass through untouched. *)
  checks "printable untouched" "\"hello, world!\""
    (Json.to_string ~pretty:false (Json.String "hello, world!"))

let json_escapes_keys () =
  checks "object keys escaped" "{\"a\\\"b\":1}"
    (Json.to_string ~pretty:false (Json.Obj [ ("a\"b", Json.Int 1) ]))

let json_nonfinite_floats () =
  checks "nan" "null" (Json.to_string ~pretty:false (Json.Float Float.nan));
  checks "+inf" "null" (Json.to_string ~pretty:false (Json.Float Float.infinity));
  checks "-inf" "null"
    (Json.to_string ~pretty:false (Json.Float Float.neg_infinity));
  checks "finite floats survive" "1.5"
    (Json.to_string ~pretty:false (Json.Float 1.5));
  checks "integral floats keep a decimal" "2.0"
    (Json.to_string ~pretty:false (Json.Float 2.0))

let sample =
  Json.Obj
    [
      ("name", Json.String "x");
      ("xs", Json.List [ Json.Int 1; Json.Bool false; Json.Null ]);
      ("empty", Json.Obj []);
    ]

let json_compact () =
  checks "compact: single line, no padding"
    "{\"name\":\"x\",\"xs\":[1,false,null],\"empty\":{}}"
    (Json.to_string ~pretty:false sample)

let json_pretty () =
  checks "pretty: 2-space indent"
    "{\n  \"name\": \"x\",\n  \"xs\": [\n    1,\n    false,\n    null\n  ],\n\
    \  \"empty\": {}\n}"
    (Json.to_string ~pretty:true sample);
  checks "pretty is the default"
    (Json.to_string ~pretty:true sample)
    (Json.to_string sample)

let qsuite = List.map QCheck_alcotest.to_alcotest
    [ prop_percentile_monotone; prop_bitset_roundtrip; prop_rng_int_range ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "rng: deterministic" rng_deterministic;
    tc "rng: seed sensitivity" rng_seed_sensitivity;
    tc "rng: int bounds" rng_int_bounds;
    tc "rng: int_in bounds" rng_int_in_bounds;
    tc "rng: int_in collapsed range" rng_int_in_singleton;
    tc "rng: int_in empty range rejected" rng_int_in_empty_range_rejected;
    tc "rng: int_in full domain" rng_int_in_full_domain;
    tc "rng: int_in wide positive range" rng_int_in_wide_positive;
    tc "rng: int_in wide negative range" rng_int_in_wide_negative;
    tc "rng: int_in near-extreme ranges" rng_int_in_near_max_int;
    tc "rng: int rejects non-positive bound" rng_int_rejects_nonpositive;
    tc "rng: float bounds" rng_float_bounds;
    tc "rng: split independence" rng_split_independent;
    tc "rng: labelled split is stable" rng_split_labelled_stable;
    tc "rng: labelled split order-independent" rng_split_labelled_order_independent;
    tc "rng: shuffle is a permutation" rng_shuffle_permutation;
    tc "rng: choose covers support" rng_choose_uniform_support;
    tc "rng: geometric mean" rng_geometric_mean;
    tc "stats: median odd" stats_median_odd;
    tc "stats: median even" stats_median_even;
    tc "stats: percentiles" stats_percentiles;
    tc "stats: mean and stddev" stats_mean_stddev;
    tc "stats: geomean" stats_geomean;
    tc "stats: empty input rejected" stats_empty_rejected;
    tc "stats: summary consistent" stats_summary_consistent;
    tc "stats: NaN input rejected" stats_nan_rejected;
    tc "stats: numeric float ordering" stats_float_total_order;
    tc "bitset: set/get/clear" bitset_set_get_clear;
    tc "bitset: bounds checked" bitset_bounds;
    tc "bitset: cardinal and to_list" bitset_cardinal_tolist;
    tc "bitset: copy independent" bitset_copy_independent;
    tc "bitset: clear_all" bitset_clear_all;
    tc "table: renders" table_renders;
    tc "table: arity checked" table_arity_checked;
    tc "table: fmt_pct" table_fmt_pct;
    tc "table: fmt_bytes" table_fmt_bytes;
    tc "dot: renders with escaping" dot_renders;
    tc "dot: min_weight hides edges" dot_min_weight_hides;
    tc "dot: stable group colours" dot_group_color_stable;
    tc "json: escapes specials" json_escapes_specials;
    tc "json: escapes object keys" json_escapes_keys;
    tc "json: non-finite floats are null" json_nonfinite_floats;
    tc "json: compact output" json_compact;
    tc "json: pretty output" json_pretty;
  ]
  @ qsuite
