(* Tests for the continuous-profiling service: protocol round-trips and
   rejection paths, batch determinism across worker counts, the
   staleness/invalidation policy, warm-cache serving with zero profiler
   runs, the fleet simulator's deterministic schedule, and the
   Unix-domain socket loop. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "halo-serve-test-%d-%d" (Unix.getpid ()) !n)

let jok = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

let record id workload seed weight =
  {
    Serve_proto.id;
    payload =
      Serve_proto.Profile_record
        { workload; seed; weight; scale = Workload.Test };
  }

let request id workload =
  { Serve_proto.id; payload = Serve_proto.Plan_request { workload } }

let stats id = { Serve_proto.id; payload = Serve_proto.Stats }
let shutdown id = { Serve_proto.id; payload = Serve_proto.Shutdown }

let counter obs name =
  Metrics.counter_value (Metrics.counter (Obs.metrics obs) name)

let field_string name j =
  match Json.get_string name j with
  | Ok s -> s
  | Error e -> Alcotest.fail e

(* ---------------- protocol ---------------- *)

let proto_round_trips () =
  List.iter
    (fun job ->
      let back = jok (Serve_proto.job_of_json (Serve_proto.job_to_json job)) in
      checkb "round-trips" true (back = job))
    [
      record 1 "ft" 3 1.0;
      {
        Serve_proto.id = 2;
        payload =
          Serve_proto.Profile_record
            { workload = "health"; seed = 9; weight = 2.5; scale = Workload.Ref };
      };
      {
        Serve_proto.id = 3;
        payload = Serve_proto.Profile_load { path = "x.jsonl"; weight = 0.5 };
      };
      request 4 "omnetpp";
      stats 5;
      shutdown 6;
    ]

let proto_defaults () =
  let job =
    jok (Serve_proto.job_of_line {|{"job":"profile-record","id":7,"workload":"ft"}|})
  in
  (match job.Serve_proto.payload with
  | Serve_proto.Profile_record { workload; seed; weight; scale } ->
      checks "workload" "ft" workload;
      checki "seed defaults to 1" 1 seed;
      checkb "weight defaults to 1" true (weight = 1.0);
      checkb "scale defaults to test" true (scale = Workload.Test)
  | _ -> Alcotest.fail "wrong payload");
  checki "id parsed" 7 job.Serve_proto.id

let proto_rejects () =
  let fails line =
    match Serve_proto.job_of_line line with
    | Ok _ -> Alcotest.fail ("accepted: " ^ line)
    | Error _ -> ()
  in
  fails "not json at all";
  fails {|{"id":1}|};
  fails {|{"job":"frobnicate","id":1}|};
  fails {|{"job":"profile-record","id":1,"workload":"ft","weight":0}|};
  fails {|{"job":"profile-record","id":1,"workload":"ft","weight":-2}|};
  fails {|{"job":"profile-record","id":1,"workload":"ft","scale":"huge"}|};
  fails {|{"job":"plan-request","id":1}|}

(* ---------------- engine ---------------- *)

let config ?cache ?(jobs = 1) ?(staleness = Serve.default_staleness_weight) ()
    =
  {
    Serve.jobs;
    staleness_weight = staleness;
    pipeline = Pipeline.default_config;
    cache;
  }

let mixed_stream =
  [
    record 1 "ft" 3 1.0;
    record 2 "health" 5 2.0;
    request 3 "ft";
    request 4 "health";
    record 5 "ft" 7 4.0;
    request 6 "ft";
    stats 7;
  ]

let batch_deterministic_across_jobs () =
  let responses jobs =
    let cache = Plan_cache.create (tmp_dir ()) in
    let engine = Serve.create (config ~cache ~jobs ()) in
    Serve.handle_batch engine mixed_stream
    |> List.map Serve_proto.response_line
    |> String.concat "\n"
  in
  checks "response stream byte-identical at --jobs 1 and --jobs 4"
    (responses 1) (responses 4)

let staleness_policy () =
  let obs = Obs.create () in
  let engine = Serve.create ~obs (config ~staleness:4.0 ()) in
  let one job = List.hd (Serve.handle_batch engine [ job ]) in
  ignore (one (record 1 "ft" 3 1.0) : Json.t);
  let r1 = one (request 2 "ft") in
  checks "first plan derives from the aggregate" "aggregate"
    (field_string "source" r1);
  ignore (one (record 3 "ft" 4 3.9) : Json.t);
  checki "under the threshold: no invalidation" 0
    (counter obs "serve.plan.invalidations");
  checks "still served from memory" "memory" (field_string "source" (one (request 4 "ft")));
  ignore (one (record 5 "ft" 5 0.2) : Json.t);
  checki "mass beyond the threshold invalidates eagerly" 1
    (counter obs "serve.plan.invalidations");
  checks "next request re-derives from the aggregate" "aggregate"
    (field_string "source" (one (request 6 "ft")));
  checki "requests were hit/miss counted" 1 (counter obs "serve.plan.hits");
  checki "two derivations were misses" 2 (counter obs "serve.plan.misses");
  checki "no profiler run beyond the three records" 3
    (counter obs "profile.runs")

let warm_cache_serves_without_profiling () =
  let dir = tmp_dir () in
  (* First process: cold request profiles once and stores the plan. *)
  let cold = Serve.create (config ~cache:(Plan_cache.create dir) ()) in
  checks "cold request profiles" "profiled"
    (field_string "source" (List.hd (Serve.handle_batch cold [ request 1 "ft" ])));
  (* Second process: same cache directory, fresh engine and obs. *)
  let obs = Obs.create () in
  let warm = Serve.create ~obs (config ~cache:(Plan_cache.create dir) ()) in
  let r1 = List.hd (Serve.handle_batch warm [ request 1 "ft" ]) in
  checks "warm request adopts the cached plan" "cache" (field_string "source" r1);
  let r2 = List.hd (Serve.handle_batch warm [ request 2 "ft" ]) in
  checks "repeat request is a memory hit" "memory" (field_string "source" r2);
  checki "warm engine never profiles" 0 (counter obs "profile.runs")

let shutdown_semantics () =
  let engine = Serve.create (config ()) in
  let rs =
    Serve.handle_batch engine [ stats 1; shutdown 2; request 3 "ft" ]
  in
  (match rs with
  | [ a; b; c ] ->
      checkb "stats ok" true (Json.get_bool "ok" a = Ok true);
      checkb "shutdown acknowledged" true (Json.get_bool "ok" b = Ok true);
      checkb "post-shutdown job refused" true (Json.get_bool "ok" c = Ok false)
  | l -> Alcotest.fail (Printf.sprintf "expected 3 responses, got %d" (List.length l)));
  checkb "engine is stopping" true (Serve.shutdown_requested engine);
  checkb "later batches refuse too" true
    (Json.get_bool "ok" (List.hd (Serve.handle_batch engine [ stats 4 ]))
    = Ok false)

let handle_line_recovers () =
  let engine = Serve.create (config ()) in
  let bad = Serve.handle_line engine "{not json" in
  checkb "parse failure is an error response" true
    (Json.get_bool "ok" bad = Ok false);
  let unknown = Serve.handle_line engine {|{"job":"plan-request","id":9,"workload":"nope"}|} in
  checkb "unknown workload is an error response" true
    (Json.get_bool "ok" unknown = Ok false);
  checkb "id recovered" true (Json.get_int "id" unknown = Ok 9)

(* ---------------- fleet simulator ---------------- *)

let sim_stream_deterministic () =
  let cfg =
    { Serve_sim.default_config with Serve_sim.clients = 40; rounds = 3; seed = 9 }
  in
  checkb "same config, same schedule" true
    (Serve_sim.job_stream cfg = Serve_sim.job_stream cfg);
  checkb "seed changes the schedule" true
    (Serve_sim.job_stream { cfg with Serve_sim.seed = 10 }
    <> Serve_sim.job_stream cfg);
  let flat = List.concat (Serve_sim.job_stream cfg) in
  checki "ids number the flattened stream" (List.length flat)
    (List.length
       (List.filteri (fun i j -> j.Serve_proto.id = i + 1) flat))

let sim_run_smoke () =
  let cfg =
    {
      Serve_sim.default_config with
      Serve_sim.clients = 40;
      rounds = 3;
      record_prob = 0.1;
      seed = 9;
      serve = config ~jobs:2 ();
    }
  in
  let r = Serve_sim.run cfg in
  checki "all jobs accounted for" (40 * 3) r.Serve_sim.jobs_total;
  checki "records + requests = jobs" r.Serve_sim.jobs_total
    (r.Serve_sim.records + r.Serve_sim.requests);
  checki "no errors" 0 r.Serve_sim.errors;
  checkb "hit rate in [0,1]" true
    (r.Serve_sim.plan_hit_rate >= 0.0 && r.Serve_sim.plan_hit_rate <= 1.0);
  checkb "profiling happened" true (r.Serve_sim.profile_runs > 0);
  checkb "latency quantiles ordered" true
    (r.Serve_sim.p50_s <= r.Serve_sim.p99_s
    && r.Serve_sim.p99_s <= r.Serve_sim.p999_s);
  checkb "report renders" true
    (String.length (Table.render (Serve_sim.report_table r)) > 0);
  checkb "report serialises" true
    (String.length (Json.to_string (Serve_sim.report_to_json r)) > 0)

(* ---------------- line reader ---------------- *)

let line_reader_one_byte_reads () =
  (* A pipe drained one byte at a time: every refill is a short read, so
     any line that survives proves the partial-line buffer reassembles
     across read boundaries. Also covers CRLF stripping and a final line
     with no trailing newline. *)
  let r, wfd = Unix.pipe () in
  let payload = "alpha\nbeta gamma\r\ndelta\n\nlast-no-newline" in
  let writer =
    Domain.spawn (fun () ->
        String.iter
          (fun c ->
            ignore (Unix.write_substring wfd (String.make 1 c) 0 1 : int))
          payload;
        Unix.close wfd)
  in
  let lr = Serve.Line_reader.create ~buf_size:1 r in
  let rec drain acc =
    match Serve.Line_reader.read_line lr with
    | None -> List.rev acc
    | Some l -> drain (l :: acc)
  in
  let lines = drain [] in
  Domain.join writer;
  Unix.close r;
  Alcotest.check
    (Alcotest.list Alcotest.string)
    "lines reassembled across one-byte reads"
    [ "alpha"; "beta gamma"; "delta"; ""; "last-no-newline" ]
    lines

let line_reader_large_chunks () =
  (* The same payload through a large buffer: one refill may hold many
     lines, the pending buffer must hand them out one at a time. *)
  let r, wfd = Unix.pipe () in
  let payload = String.concat "\n" (List.init 50 string_of_int) ^ "\n" in
  let writer =
    Domain.spawn (fun () ->
        ignore
          (Unix.write_substring wfd payload 0 (String.length payload) : int);
        Unix.close wfd)
  in
  let lr = Serve.Line_reader.create r in
  let rec drain acc =
    match Serve.Line_reader.read_line lr with
    | None -> List.rev acc
    | Some l -> drain (l :: acc)
  in
  let lines = drain [] in
  Domain.join writer;
  Unix.close r;
  Alcotest.check
    (Alcotest.list Alcotest.string)
    "buffered lines split correctly" (List.init 50 string_of_int) lines

(* ---------------- aggregate persistence ---------------- *)

let aggregates_survive_restart () =
  let dir = tmp_dir () in
  (* First engine: fold fleet mass, then persist on the way out (the
     run_channels/run_socket epilogues call save_aggregates; here we
     call it directly). *)
  let a = Serve.create (config ~cache:(Plan_cache.create dir) ()) in
  ignore
    (Serve.handle_batch a [ record 1 "ft" 3 1.0; record 2 "ft" 4 2.5 ]
      : Json.t list);
  checki "two aggregates saved is one artifact" 1 (Serve.save_aggregates a);
  let stats_of engine =
    let j = Serve.stats_json engine in
    match Json.get_list "programs" j with
    | Ok [ one ] ->
        ( (match Json.get_int "profiles" one with
          | Ok n -> n
          | Error e -> Alcotest.fail e),
          match Json.get_float "mass" one with
          | Ok m -> m
          | Error e -> Alcotest.fail e )
    | Ok l ->
        Alcotest.fail
          (Printf.sprintf "expected exactly one aggregate, got %d"
             (List.length l))
    | Error e -> Alcotest.fail e
  in
  let profiles_a, mass_a = stats_of a in
  checki "first engine folded two profiles" 2 profiles_a;
  (* Second engine, same cache dir: adopts the saved aggregate without
     profiling, and keeps counting from the restored mass. *)
  let obs = Obs.create () in
  let b = Serve.create ~obs (config ~cache:(Plan_cache.create dir) ()) in
  checki "aggregate reloaded" 1 (counter obs "serve.aggregates.loaded");
  let profiles_b, mass_b = stats_of b in
  checki "profile count restored" profiles_a profiles_b;
  checkb "mass restored" true (Float.equal mass_a mass_b);
  checki "restore never profiles" 0 (counter obs "profile.runs");
  ignore (Serve.handle_batch b [ record 3 "ft" 5 1.0 ] : Json.t list);
  let profiles_b2, mass_b2 = stats_of b in
  checki "new records keep counting" (profiles_a + 1) profiles_b2;
  checkb "new mass adds to the restored mass" true
    (Float.equal (mass_a +. 1.0) mass_b2);
  (* No cache configured: persistence is a no-op, not an error. *)
  let c = Serve.create (config ()) in
  ignore (Serve.handle_batch c [ record 1 "ft" 3 1.0 ] : Json.t list);
  checki "no cache, nothing saved" 0 (Serve.save_aggregates c)

(* ---------------- socket ---------------- *)

let socket_round_trip () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "halo-serve-%d.sock" (Unix.getpid ()))
  in
  let engine = Serve.create (config ()) in
  let server = Domain.spawn (fun () -> Serve.run_socket engine ~path) in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (Sys.file_exists path)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr sock in
  let oc = Unix.out_channel_of_descr sock in
  let ask line =
    output_string oc line;
    output_char oc '\n';
    flush oc;
    input_line ic
  in
  let stats_resp = ask {|{"job":"stats","id":1}|} in
  checkb "stats answered over the socket" true
    (Json.get_bool "ok" (Result.get_ok (Json.of_string stats_resp)) = Ok true);
  let bye = ask {|{"job":"shutdown","id":2}|} in
  checkb "shutdown acknowledged" true
    (Json.get_bool "ok" (Result.get_ok (Json.of_string bye)) = Ok true);
  (try Unix.close sock with Unix.Unix_error _ -> ());
  let served = Domain.join server in
  checki "two responses served" 2 served;
  checkb "socket unlinked on exit" true (not (Sys.file_exists path))

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  [
    tc "proto: round-trips" proto_round_trips;
    tc "proto: defaults" proto_defaults;
    tc "proto: rejects bad jobs" proto_rejects;
    slow "batch: deterministic across --jobs" batch_deterministic_across_jobs;
    slow "staleness: eager invalidation, lazy re-derive" staleness_policy;
    slow "cache: warm engine never profiles" warm_cache_serves_without_profiling;
    tc "shutdown: later jobs refused" shutdown_semantics;
    tc "lines: parse failures become error responses" handle_line_recovers;
    tc "sim: schedule is deterministic" sim_stream_deterministic;
    slow "sim: small fleet smoke" sim_run_smoke;
    tc "line reader: one-byte short reads" line_reader_one_byte_reads;
    tc "line reader: buffered chunks" line_reader_large_chunks;
    slow "aggregates: survive a restart" aggregates_survive_restart;
    slow "socket: round-trip and shutdown" socket_round_trip;
  ]
