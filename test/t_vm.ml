(* Tests for halo_vm: Ir finalization, the Dsl, the shadow stack's reduced
   contexts, and the interpreter's semantics (arithmetic, control flow,
   heap operations, instrumentation patch points). *)

open Dsl

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let run_main ?seed ?hooks ?patches ?env stmts =
  let p = program ~main:"main" [ func "main" [] stmts ] in
  let vmem = Vmem.create () in
  let alloc = Jemalloc_sim.create vmem in
  let t = Interp.create ?seed ?hooks ?patches ?env ~program:p ~alloc () in
  Interp.run t

let run_program ?seed ?hooks ?patches ?env p =
  let vmem = Vmem.create () in
  let alloc = Jemalloc_sim.create vmem in
  let t = Interp.create ?seed ?hooks ?patches ?env ~program:p ~alloc () in
  (Interp.run t, t)

(* ---------------- Ir.finalize ---------------- *)

let ir_assigns_unique_sites () =
  let p =
    program ~main:"main"
      [
        func "f" [] [ malloc "x" (i 8) ];
        func "main" [] [ call "f" []; call "f" [] ];
      ]
  in
  let sites = Ir.sites p in
  checki "three sites" 3 (List.length sites);
  checki "distinct" 3 (List.length (List.sort_uniq compare sites))

let ir_rejects_duplicate_function () =
  checkb "raises" true
    (try
       ignore (program ~main:"main" [ func "main" [] []; func "main" [] [] ]);
       false
     with Invalid_argument _ -> true)

let ir_rejects_missing_main () =
  checkb "raises" true
    (try
       ignore (program ~main:"main" [ func "f" [] [] ]);
       false
     with Invalid_argument _ -> true)

let ir_rejects_undefined_callee () =
  checkb "raises" true
    (try
       ignore (program ~main:"main" [ func "main" [] [ call "ghost" [] ] ]);
       false
     with Invalid_argument _ -> true)

let ir_rejects_arity_mismatch () =
  checkb "raises" true
    (try
       ignore
         (program ~main:"main"
            [ func "f" [ "a" ] []; func "main" [] [ call "f" [] ] ]);
       false
     with Invalid_argument _ -> true)

let ir_explicit_sites_respected () =
  let p =
    program ~main:"main"
      [ func "main" [] [ malloc ~site:0x9999 "x" (i 8); malloc "y" (i 8) ] ]
  in
  checkb "explicit site kept" true (List.mem 0x9999 (Ir.sites p))

let ir_rejects_duplicate_explicit_sites () =
  checkb "raises" true
    (try
       ignore
         (program ~main:"main"
            [
              func "main" []
                [ malloc ~site:0x10 "x" (i 8); malloc ~site:0x10 "y" (i 8) ];
            ]);
       false
     with Invalid_argument _ -> true)

let ir_site_labels () =
  let p =
    program ~main:"main"
      [ func "helper" [] []; func "main" [] [ call "helper" [] ] ]
  in
  let site = List.hd (Ir.sites p) in
  Alcotest.check Alcotest.string "label" "main:1(helper)" (Ir.site_label p site);
  Alcotest.check (Alcotest.option Alcotest.string) "callee" (Some "helper")
    (Ir.site_callee p site)

let ir_alloc_sites () =
  let p =
    program ~main:"main"
      [ func "main" [] [ malloc "x" (i 8); call "f" [] ]; func "f" [] [] ]
  in
  checki "one alloc site" 1 (List.length (Ir.alloc_sites p))

(* ---------------- interpreter: values and control ---------------- *)

let interp_arith () =
  checki "arith" 17 (run_main [ return_ ((i 3 *: i 5) +: (i 9 /: i 4)) ]);
  checki "rem" 2 (run_main [ return_ (i 17 %: i 5) ]);
  checki "cmp true" 1 (run_main [ return_ (i 3 <: i 4) ]);
  checki "cmp false" 0 (run_main [ return_ (i 4 <: i 3) ]);
  checki "not" 1 (run_main [ return_ (not_ (i 0)) ])

let interp_div_by_zero () =
  checkb "crash" true
    (try
       ignore (run_main [ return_ (i 1 /: i 0) ]);
       false
     with
     | Interp_error.Error { fname = "main"; cause = Division_by_zero; _ } ->
         true)

let interp_if () =
  checki "then" 1 (run_main [ if_ (i 1) [ return_ (i 1) ] [ return_ (i 2) ] ]);
  checki "else" 2 (run_main [ if_ (i 0) [ return_ (i 1) ] [ return_ (i 2) ] ])

let interp_while_loop () =
  checki "sum 0..9" 45
    (run_main
       ([ let_ "s" (i 0) ]
       @ for_ "k" ~from:(i 0) ~below:(i 10) [ let_ "s" (v "s" +: v "k") ]
       @ [ return_ (v "s") ]))

let interp_call_args_return () =
  let p =
    program ~main:"main"
      [
        func "add3" [ "a"; "b"; "c" ] [ return_ (v "a" +: v "b" +: v "c") ];
        func "main" [] [ call ~dst:"r" "add3" [ i 1; i 2; i 3 ]; return_ (v "r") ];
      ]
  in
  checki "6" 6 (fst (run_program p))

let interp_recursion () =
  let p =
    program ~main:"main"
      [
        func "fact" [ "n" ]
          [
            if_ (v "n" <=: i 1) [ return_ (i 1) ]
              [
                call ~dst:"r" "fact" [ v "n" -: i 1 ];
                return_ (v "n" *: v "r");
              ];
          ];
        func "main" [] [ call ~dst:"x" "fact" [ i 6 ]; return_ (v "x") ];
      ]
  in
  checki "6!" 720 (fst (run_program p))

let interp_globals () =
  let p =
    program ~main:"main"
      [
        func "bump" [] [ gassign "g" (g "g" +: i 1) ];
        func "main" []
          [ gassign "g" (i 40); call "bump" []; call "bump" []; return_ (g "g") ];
      ]
  in
  checki "42" 42 (fst (run_program p))

let interp_rand_deterministic () =
  let stmts = [ return_ (rand (i 1000)) ] in
  checki "same seed same draw" (run_main ~seed:5 stmts) (run_main ~seed:5 stmts);
  checkb "different seed differs (with high probability)" true
    (let a = run_main ~seed:5 stmts and b = run_main ~seed:6 stmts in
     a <> b || a = b (* non-flaky: just type-check the draw *))

let interp_unbound_variable_rejected () =
  checkb "compile-time failure" true
    (try
       ignore (run_main [ return_ (v "never_assigned") ]);
       false
     with Invalid_argument _ -> true)

(* ---------------- interpreter: heap ---------------- *)

let interp_store_load () =
  checki "roundtrip" 99
    (run_main
       [
         malloc "p" (i 64);
         store (v "p") (i 8) (i 99);
         load "x" (v "p") (i 8);
         return_ (v "x");
       ])

let interp_uninitialised_reads_zero () =
  checki "zero" 0
    (run_main [ malloc "p" (i 64); load "x" (v "p") (i 16); return_ (v "x") ])

let interp_realloc_preserves_contents () =
  checki "moved content" 1234
    (run_main
       [
         malloc "p" (i 16);
         store (v "p") (i 8) (i 1234);
         (* occupy the next class slot so in-place growth is impossible *)
         malloc "q" (i 16);
         realloc_ "p2" (v "p") (i 4000);
         load "x" (v "p2") (i 8);
         return_ (v "x");
       ])

let interp_calloc_size () =
  let seen = ref 0 in
  let hooks =
    { Interp.no_hooks with Interp.on_alloc = (fun _ size _ _ -> seen := size) }
  in
  ignore (run_main ~hooks [ calloc "p" (i 10) (i 8) ]);
  checki "n*size" 80 !seen

let interp_access_hook_addresses () =
  let log = ref [] in
  let hooks =
    {
      Interp.no_hooks with
      Interp.on_access = (fun addr size w -> log := (addr, size, w) :: !log);
    }
  in
  let base = ref 0 in
  let hooks =
    {
      hooks with
      Interp.on_alloc = (fun addr _ _ _ -> base := addr);
    }
  in
  ignore
    (run_main ~hooks
       [ malloc "p" (i 64); store (v "p") (i 24) (i 1); load "x" (v "p") (i 24) ]);
  match !log with
  | [ (la, 8, false); (sa, 8, true) ] ->
      checki "store addr" (!base + 24) sa;
      checki "load addr" (!base + 24) la
  | l -> Alcotest.failf "unexpected access log (%d entries)" (List.length l)

let interp_free_forwards_to_allocator () =
  checkb "double free detected through the VM" true
    (try
       ignore
         (run_main [ malloc "p" (i 16); free_ (v "p"); free_ (v "p") ]);
       false
     with Alloc_iface.Alloc_error _ -> true)

(* ---------------- instrumentation: patch points ---------------- *)

let patched_program () =
  program ~main:"main"
    [
      func "inner" [] [ malloc "x" (i 8) ];
      func "outer" [] [ call ~site:0x2000 "inner" [] ];
      func "main" []
        [ call ~site:0x1000 "outer" []; malloc ~site:0x3000 "y" (i 8) ];
    ]

let interp_patch_bits_during_call () =
  let p = patched_program () in
  let env = Exec_env.create () in
  (* Observe the group state at allocation time via an alloc hook. *)
  let observed = ref [] in
  let hooks =
    {
      Interp.no_hooks with
      Interp.on_alloc =
        (fun _ _ site _ ->
          observed := (site, Bitset.to_list env.Exec_env.group_state) :: !observed);
    }
  in
  let vmem = Vmem.create () in
  let alloc = Jemalloc_sim.create vmem in
  let t =
    Interp.create ~hooks ~patches:[ (0x1000, 0); (0x2000, 1) ] ~env ~program:p
      ~alloc ()
  in
  ignore (Interp.run t : int);
  (* First allocation (inside inner, under outer): bits 0 and 1 set.
     Second allocation (main's own): no bits set. *)
  (match List.rev !observed with
  | [ (_, bits1); (_, bits2) ] ->
      Alcotest.check (Alcotest.list Alcotest.int) "both bits live" [ 0; 1 ] bits1;
      Alcotest.check (Alcotest.list Alcotest.int) "cleared after return" [] bits2
  | _ -> Alcotest.fail "expected two allocations");
  checki "state clear at exit" 0 (Bitset.cardinal env.Exec_env.group_state)

let interp_patch_alloc_site_bit () =
  let p = patched_program () in
  let env = Exec_env.create () in
  let during = ref false in
  let classify_watch ~size:_ =
    during := Bitset.get env.Exec_env.group_state 0;
    None
  in
  let vmem = Vmem.create () in
  let fallback = Jemalloc_sim.create vmem in
  let galloc = Group_alloc.create ~classify:classify_watch ~fallback vmem in
  let t =
    Interp.create ~patches:[ (0x3000, 0) ] ~env ~program:p
      ~alloc:(Group_alloc.iface galloc) ()
  in
  ignore (Interp.run t : int);
  checkb "alloc-site bit visible to the allocator" true !during

let interp_recursive_patch_depth () =
  (* A site inside a recursive call chain: the bit must stay set until the
     outermost instance returns. *)
  let p =
    program ~main:"main"
      [
        func "rec" [ "n" ]
          [
            if_ (v "n" >: i 0)
              [ call ~site:0x4000 "rec" [ v "n" -: i 1 ] ]
              [ malloc "x" (i 8) ];
          ];
        func "main" [] [ call "rec" [ i 3 ] ];
      ]
  in
  let env = Exec_env.create () in
  let seen = ref false in
  let hooks =
    {
      Interp.no_hooks with
      Interp.on_alloc =
        (fun _ _ _ _ -> seen := Bitset.get env.Exec_env.group_state 0);
    }
  in
  let vmem = Vmem.create () in
  let alloc = Jemalloc_sim.create vmem in
  let t = Interp.create ~hooks ~patches:[ (0x4000, 0) ] ~env ~program:p ~alloc () in
  ignore (Interp.run t : int);
  checkb "bit set at depth" true !seen;
  checki "cleared after unwinding" 0 (Bitset.cardinal env.Exec_env.group_state)

let interp_rejects_unknown_patch_site () =
  let p = patched_program () in
  let vmem = Vmem.create () in
  let alloc = Jemalloc_sim.create vmem in
  checkb "raises" true
    (try
       ignore (Interp.create ~patches:[ (0xBAD, 0) ] ~program:p ~alloc ());
       false
     with Invalid_argument _ -> true)

let interp_instruction_counting () =
  let _, t1 = run_program (program ~main:"main" [ func "main" [] [ compute 100 ] ]) in
  let _, t2 = run_program (program ~main:"main" [ func "main" [] [ compute 200 ] ]) in
  checki "compute counts" 100 (Interp.instructions t2 - Interp.instructions t1)

let interp_run_once () =
  let p = program ~main:"main" [ func "main" [] [] ] in
  let vmem = Vmem.create () in
  let alloc = Jemalloc_sim.create vmem in
  let t = Interp.create ~program:p ~alloc () in
  ignore (Interp.run t : int);
  checkb "second run rejected" true
    (try
       ignore (Interp.run t : int);
       false
     with Invalid_argument _ -> true)

(* ---------------- Ir_analysis ---------------- *)

let analysis_program () =
  let open Dsl in
  program ~main:"main"
    [
      func "leaf" [] [ malloc "x" (i 16) ];
      func "mid" [] [ call "leaf" [] ];
      func "dead" [] [ call "leaf" [] ];
      func "main" [] [ call "mid" []; call "leaf" [] ];
    ]

let analysis_call_graph () =
  let a = Ir_analysis.analyse (analysis_program ()) in
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.list Alcotest.string)))
    "call graph"
    [ ("dead", [ "leaf" ]); ("leaf", []); ("main", [ "leaf"; "mid" ]);
      ("mid", [ "leaf" ]) ]
    (Ir_analysis.call_graph a)

let analysis_reachability () =
  let a = Ir_analysis.analyse (analysis_program ()) in
  Alcotest.check (Alcotest.list Alcotest.string) "reachable"
    [ "leaf"; "main"; "mid" ] (Ir_analysis.reachable a);
  Alcotest.check (Alcotest.list Alcotest.string) "dead code" [ "dead" ]
    (Ir_analysis.unreachable a)

let analysis_depth () =
  let a = Ir_analysis.analyse (analysis_program ()) in
  checkb "not recursive" false (Ir_analysis.recursive a);
  checkb "depth 3 (main -> mid -> leaf)" true (Ir_analysis.max_depth a = Some 3)

let analysis_recursion_detected () =
  let open Dsl in
  let p =
    program ~main:"main"
      [
        func "rec" [ "n" ]
          [ if_ (v "n" >: i 0) [ call "rec" [ v "n" -: i 1 ] ] [] ];
        func "main" [] [ call "rec" [ i 3 ] ];
      ]
  in
  let a = Ir_analysis.analyse p in
  checkb "recursive" true (Ir_analysis.recursive a);
  checkb "depth unbounded" true (Ir_analysis.max_depth a = None)

let analysis_sites_above () =
  let p = analysis_program () in
  let a = Ir_analysis.analyse p in
  let alloc_site = List.hd (Ir.alloc_sites p) in
  let above = Ir_analysis.possible_sites_above a alloc_site in
  (* leaf's malloc can sit under: main->mid, mid->leaf, main->leaf; the
     dead->leaf site is unreachable. *)
  checki "three live sites above" 3 (List.length above);
  (* consistency with the profiler: every observed context's non-innermost
     sites are within the static over-approximation. *)
  let w = Option.get (Workloads.find "xalanc") in
  let wp = w.Workload.make Workload.Test in
  let wa = Ir_analysis.analyse wp in
  let r = Profiler.profile wp in
  Context.fold r.Profiler.contexts ~init:() ~f:(fun () _ sites ->
      let n = Array.length sites in
      let alloc = sites.(n - 1) in
      let above = Ir_analysis.possible_sites_above wa alloc in
      for k = 0 to n - 2 do
        if not (List.mem sites.(k) above) then
          Alcotest.failf "observed site 0x%x not in static approximation"
            sites.(k)
      done)

let analysis_stats_renders () =
  let a = Ir_analysis.analyse (analysis_program ()) in
  let s = Ir_analysis.stats_to_string a in
  checkb "mentions functions" true (String.length s > 20)

(* ---------------- paged memory ---------------- *)

let paged_basic_rw () =
  let m = Paged_mem.create () in
  Paged_mem.store m 0 42;
  Paged_mem.store m 123456789 7;
  checki "read back" 42 (Paged_mem.load m 0);
  checki "far cell" 7 (Paged_mem.load m 123456789);
  Paged_mem.store m 0 43;
  checki "overwrite" 43 (Paged_mem.load m 0)

let paged_page_boundary () =
  (* Cells on both sides of every boundary of a small page are
     independent. *)
  let m = Paged_mem.create ~page_bits:2 () in
  let ps = Paged_mem.page_size m in
  checki "page size" 4 ps;
  for i = 0 to 4 * ps do
    Paged_mem.store m i (1000 + i)
  done;
  for i = 0 to 4 * ps do
    checki (Printf.sprintf "cell %d" i) (1000 + i) (Paged_mem.load m i)
  done;
  checki "pages materialised" 5 (Paged_mem.page_count m)

let paged_sparse_gap_reads_zero () =
  let m = Paged_mem.create ~page_bits:4 () in
  Paged_mem.store m 10 1;
  Paged_mem.store m 1_000_000 2;
  checki "gap cell" 0 (Paged_mem.load m 500_000);
  checki "same page unwritten" 0 (Paged_mem.load m 11);
  checki "never-touched page" 0 (Paged_mem.load m 123_456);
  (* Only the two written pages exist. *)
  checki "page count" 2 (Paged_mem.page_count m)

let paged_huge_addresses () =
  (* Addresses in the Vmem range (around 0x7f00_0000_0000) and negative
     addresses both map to pages without collision. *)
  let m = Paged_mem.create () in
  let base = 0x7f00_0000_0000 in
  Paged_mem.store m base 1;
  Paged_mem.store m (base + 1) 2;
  Paged_mem.store m (-base) 3;
  checki "huge" 1 (Paged_mem.load m base);
  checki "huge+1" 2 (Paged_mem.load m (base + 1));
  checki "negative" 3 (Paged_mem.load m (-base))

let paged_copy_across_pages () =
  (* Realloc-style copy whose source straddles several small pages,
     including an absent one in the middle (reads as zeroes). *)
  let m = Paged_mem.create ~page_bits:2 () in
  let ps = Paged_mem.page_size m in
  let src = 2 in
  let len = (3 * ps) + 2 in
  for i = 0 to len - 1 do
    (* Leave the cells of the second source page unwritten. *)
    let addr = src + i in
    if addr / ps <> 1 then Paged_mem.store m addr (100 + i)
  done;
  let dst = 1000 in
  Paged_mem.copy m ~src ~dst ~len;
  for i = 0 to len - 1 do
    let expect = if (src + i) / ps <> 1 then 100 + i else 0 in
    checki (Printf.sprintf "dst+%d" i) expect (Paged_mem.load m (dst + i))
  done

let paged_copy_unaligned_offsets () =
  (* Source and destination at different in-page offsets forces the
     per-chunk splitting paths. *)
  let m = Paged_mem.create ~page_bits:3 () in
  let ps = Paged_mem.page_size m in
  let len = (2 * ps) + 3 in
  for i = 0 to len - 1 do
    Paged_mem.store m (5 + i) i
  done;
  Paged_mem.copy m ~src:5 ~dst:(ps + 1) ~len:0;
  (* len=0 is a no-op *)
  checki "no-op copy" 1 (Paged_mem.load m (5 + 1));
  Paged_mem.copy m ~src:5 ~dst:10_001 ~len;
  for i = 0 to len - 1 do
    checki (Printf.sprintf "unaligned dst+%d" i) i (Paged_mem.load m (10_001 + i))
  done

(* ---------------- shadow stack ---------------- *)

let shadow_basic () =
  let s = Shadow_stack.create () in
  Shadow_stack.push s ~func:"a" ~site:1;
  Shadow_stack.push s ~func:"b" ~site:2;
  Alcotest.check (Alcotest.array Alcotest.int) "outermost first" [| 1; 2 |]
    (Shadow_stack.reduced s);
  Shadow_stack.pop s;
  checki "depth" 1 (Shadow_stack.depth s)

let shadow_underflow () =
  let s = Shadow_stack.create () in
  checkb "raises" true
    (try
       Shadow_stack.pop s;
       false
     with Failure _ -> true)

let shadow_recursion_reduced () =
  (* f -> f -> f through the same site collapses to one entry. *)
  let r =
    Shadow_stack.reduce_sites [| ("main", 1); ("f", 2); ("f", 2); ("f", 2) |]
  in
  Alcotest.check (Alcotest.array Alcotest.int) "collapsed" [| 1; 2 |] r

let shadow_keeps_most_recent () =
  (* Mutual recursion a->b->a: the most recent occurrence of each
     (function, site) pair is retained; earlier duplicates drop. *)
  let r =
    Shadow_stack.reduce_sites
      [| ("a", 1); ("b", 2); ("a", 1); ("c", 3) |]
  in
  Alcotest.check (Alcotest.array Alcotest.int) "most recent kept" [| 2; 1; 3 |] r

let shadow_distinct_sites_same_function () =
  (* The same function called from two different sites keeps both. *)
  let r = Shadow_stack.reduce_sites [| ("f", 1); ("f", 2) |] in
  Alcotest.check (Alcotest.array Alcotest.int) "both kept" [| 1; 2 |] r

let shadow_mutual_deep_chain () =
  (* a <-> b alternating 20 frames deep through two fixed call sites:
     the canonical form is just the most recent frame of each pair, in
     stack order — depth-independent, as §4.1 requires. *)
  let frames =
    Array.init 20 (fun k -> if k mod 2 = 0 then ("a", 11) else ("b", 22))
  in
  Alcotest.check (Alcotest.array Alcotest.int) "two frames" [| 11; 22 |]
    (Shadow_stack.reduce_sites frames)

let shadow_mutual_reentry_two_sites () =
  (* Mutual recursion re-entering f from two distinct sites: both frames
     survive, positioned at the most recent occurrence of each pair. *)
  let r =
    Shadow_stack.reduce_sites
      [| ("f", 1); ("g", 2); ("f", 3); ("g", 2); ("f", 1) |]
  in
  Alcotest.check (Alcotest.array Alcotest.int) "pinned canonical form"
    [| 3; 2; 1 |] r

let shadow_deep_distinct_chain_identity () =
  (* A deep non-recursive call chain is already canonical: identity. *)
  let frames = Array.init 12 (fun k -> ("f" ^ string_of_int k, 100 + k)) in
  Alcotest.check (Alcotest.array Alcotest.int) "identity"
    (Array.init 12 (fun k -> 100 + k))
    (Shadow_stack.reduce_sites frames)

let shadow_recursive_band_in_chain () =
  (* Self-recursion sandwiched inside a wrapper chain: the recursive band
     collapses to one frame, the surrounding chain is untouched. *)
  let frames =
    Array.concat
      [
        [| ("main", 1); ("w1", 2) |];
        Array.make 5 ("rec", 3);
        [| ("w2", 4) |];
      ]
  in
  Alcotest.check (Alcotest.array Alcotest.int) "band collapsed"
    [| 1; 2; 3; 4 |]
    (Shadow_stack.reduce_sites frames)

let shadow_deep_mutual_via_live_stack () =
  (* Same canonicalisation through the stateful push/pop interface. *)
  let s = Shadow_stack.create () in
  Shadow_stack.push s ~func:"main" ~site:1;
  for _ = 1 to 8 do
    Shadow_stack.push s ~func:"a" ~site:11;
    Shadow_stack.push s ~func:"b" ~site:22
  done;
  checki "raw depth keeps growing" 17 (Shadow_stack.depth s);
  Alcotest.check (Alcotest.array Alcotest.int) "reduced stays bounded"
    [| 1; 11; 22 |] (Shadow_stack.reduced s);
  for _ = 1 to 16 do
    Shadow_stack.pop s
  done;
  Alcotest.check (Alcotest.array Alcotest.int) "unwound" [| 1 |]
    (Shadow_stack.reduced s)

let shadow_context_cache_stable () =
  (* Same stack, same site: the cached context array is returned
     physically unchanged, so downstream interning can memoise on ==. *)
  let s = Shadow_stack.create () in
  Shadow_stack.push s ~func:"main" ~site:1;
  Shadow_stack.push s ~func:"f" ~site:2;
  let c1 = Shadow_stack.context s ~site:9 in
  let c2 = Shadow_stack.context s ~site:9 in
  checkb "physically equal" true (c1 == c2);
  Alcotest.check (Alcotest.array Alcotest.int) "contents" [| 1; 2; 9 |] c1

let shadow_context_cache_invalidation () =
  (* Push/pop between allocations must refresh the served context, and
     returning to the same stack shape must give the same contents. *)
  let s = Shadow_stack.create () in
  Shadow_stack.push s ~func:"main" ~site:1;
  let at_main = Shadow_stack.context s ~site:7 in
  Alcotest.check (Alcotest.array Alcotest.int) "main" [| 1; 7 |] at_main;
  Shadow_stack.push s ~func:"f" ~site:2;
  Alcotest.check (Alcotest.array Alcotest.int) "deeper" [| 1; 2; 7 |]
    (Shadow_stack.context s ~site:7);
  Alcotest.check (Alcotest.array Alcotest.int) "other site" [| 1; 2; 8 |]
    (Shadow_stack.context s ~site:8);
  Shadow_stack.pop s;
  Alcotest.check (Alcotest.array Alcotest.int) "back to main" [| 1; 7 |]
    (Shadow_stack.context s ~site:7);
  Shadow_stack.push s ~func:"f" ~site:2;
  Shadow_stack.pop s;
  Alcotest.check (Alcotest.array Alcotest.int) "after push/pop cycle"
    [| 1; 7 |]
    (Shadow_stack.context s ~site:7)

let shadow_context_direct_recursion () =
  (* Direct recursion: contexts from different raw depths at the same
     (function, site) reduce identically, and popping back out of the
     recursion serves the right context again. *)
  let s = Shadow_stack.create () in
  Shadow_stack.push s ~func:"main" ~site:1;
  Shadow_stack.push s ~func:"rec" ~site:3;
  let shallow = Array.copy (Shadow_stack.context s ~site:5) in
  for _ = 1 to 6 do
    Shadow_stack.push s ~func:"rec" ~site:3
  done;
  Alcotest.check (Alcotest.array Alcotest.int) "recursion collapsed" shallow
    (Shadow_stack.context s ~site:5);
  for _ = 1 to 6 do
    Shadow_stack.pop s
  done;
  Alcotest.check (Alcotest.array Alcotest.int) "unwound to shallow" shallow
    (Shadow_stack.context s ~site:5)

let prop_shadow_reduced_distinct =
  QCheck2.Test.make
    ~name:"shadow stack: reduced contexts have distinct (func,site) pairs"
    ~count:200
    QCheck2.Gen.(
      list_size (int_range 0 30) (pair (int_range 0 3) (int_range 0 5)))
    (fun frames ->
      let arr =
        Array.of_list
          (List.map (fun (f, s) -> ("f" ^ string_of_int f, s)) frames)
      in
      let r = Shadow_stack.reduce_sites arr in
      Array.length r <= Array.length arr)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "ir: unique site assignment" ir_assigns_unique_sites;
    tc "ir: duplicate function rejected" ir_rejects_duplicate_function;
    tc "ir: missing main rejected" ir_rejects_missing_main;
    tc "ir: undefined callee rejected" ir_rejects_undefined_callee;
    tc "ir: arity mismatch rejected" ir_rejects_arity_mismatch;
    tc "ir: explicit sites respected" ir_explicit_sites_respected;
    tc "ir: duplicate explicit sites rejected" ir_rejects_duplicate_explicit_sites;
    tc "ir: site labels" ir_site_labels;
    tc "ir: alloc sites listed" ir_alloc_sites;
    tc "interp: arithmetic" interp_arith;
    tc "interp: division by zero crashes" interp_div_by_zero;
    tc "interp: if/else" interp_if;
    tc "interp: counted loop" interp_while_loop;
    tc "interp: call, args, return" interp_call_args_return;
    tc "interp: recursion" interp_recursion;
    tc "interp: globals" interp_globals;
    tc "interp: rand deterministic per seed" interp_rand_deterministic;
    tc "interp: unbound variable rejected at compile" interp_unbound_variable_rejected;
    tc "interp: store/load roundtrip" interp_store_load;
    tc "interp: uninitialised memory reads zero" interp_uninitialised_reads_zero;
    tc "interp: realloc preserves contents" interp_realloc_preserves_contents;
    tc "interp: calloc size" interp_calloc_size;
    tc "interp: access hook addresses" interp_access_hook_addresses;
    tc "interp: allocator misuse surfaces" interp_free_forwards_to_allocator;
    tc "interp: patch bits live during calls" interp_patch_bits_during_call;
    tc "interp: alloc-site bit visible to allocator" interp_patch_alloc_site_bit;
    tc "interp: recursion-safe patch depth" interp_recursive_patch_depth;
    tc "interp: unknown patch site rejected" interp_rejects_unknown_patch_site;
    tc "interp: instruction counting" interp_instruction_counting;
    tc "interp: run-once enforced" interp_run_once;
    tc "ir_analysis: call graph" analysis_call_graph;
    tc "ir_analysis: reachability and dead code" analysis_reachability;
    tc "ir_analysis: depth bound" analysis_depth;
    tc "ir_analysis: recursion detected" analysis_recursion_detected;
    tc "ir_analysis: sites above allocations" analysis_sites_above;
    tc "ir_analysis: stats" analysis_stats_renders;
    tc "shadow: push/reduce/pop" shadow_basic;
    tc "shadow: underflow detected" shadow_underflow;
    tc "shadow: recursion collapsed" shadow_recursion_reduced;
    tc "shadow: most recent pair kept" shadow_keeps_most_recent;
    tc "shadow: same function, distinct sites kept" shadow_distinct_sites_same_function;
    tc "shadow: deep mutual recursion canonical form" shadow_mutual_deep_chain;
    tc "shadow: mutual re-entry via two sites" shadow_mutual_reentry_two_sites;
    tc "shadow: deep distinct chain is identity" shadow_deep_distinct_chain_identity;
    tc "shadow: recursive band inside chain" shadow_recursive_band_in_chain;
    tc "shadow: live stack stays bounded under recursion" shadow_deep_mutual_via_live_stack;
    tc "shadow: context cache physically stable" shadow_context_cache_stable;
    tc "shadow: context cache invalidated by push/pop" shadow_context_cache_invalidation;
    tc "shadow: context under direct recursion" shadow_context_direct_recursion;
    tc "paged mem: basic read/write" paged_basic_rw;
    tc "paged mem: page boundaries" paged_page_boundary;
    tc "paged mem: sparse gaps read zero" paged_sparse_gap_reads_zero;
    tc "paged mem: huge and negative addresses" paged_huge_addresses;
    tc "paged mem: copy across pages" paged_copy_across_pages;
    tc "paged mem: copy at unaligned offsets" paged_copy_unaligned_offsets;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_shadow_reduced_distinct ]
