(* Tests for the trace-compiled engine: promotion threshold boundaries,
   guarded deoptimisation, interp/traced observable equivalence (both
   hand-written and generatively via Fuzz_gen), and the selfcheck
   oracle — a clean run checkpoints silently, an injected cost skew is
   caught at the first checkpoint. *)

open Dsl

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* Run a program under one engine kind; observables only. *)
let observe ?threshold kind p =
  let vmem = Vmem.create () in
  let alloc = Jemalloc_sim.create vmem in
  let e = Engine.create ~kind ?threshold ~seed:2 ~program:p ~alloc () in
  let ret = Engine.run e in
  let loads, stores = Engine.load_store_counts e in
  [ ret; Engine.instructions e; loads; stores ]

(* Same, keeping the traced engine's stats. *)
let traced_run ?(mode = Trace_compile.Fast) ?threshold ?cost_skew p =
  let vmem = Vmem.create () in
  let alloc = Jemalloc_sim.create vmem in
  let t =
    Trace_compile.create ~mode ?threshold ?cost_skew ~seed:2 ~program:p
      ~alloc ()
  in
  let ret = Trace_compile.run t in
  let loads, stores = Trace_compile.load_store_counts t in
  ([ ret; Trace_compile.instructions t; loads; stores ], Trace_compile.stats t)

let check_same_observables name p =
  let reference = observe Engine.Interp p in
  Alcotest.(check (list int))
    (name ^ ": traced") reference
    (observe ~threshold:2 Engine.Traced p);
  Alcotest.(check (list int))
    (name ^ ": selfcheck") reference
    (observe ~threshold:2 Engine.Selfcheck p)

(* A program whose only loop runs exactly [iters] body executions. *)
let counted_loop iters =
  program ~main:"main"
    [
      func "main" []
        (let_ "acc" (i 0)
         :: for_ "j" ~from:(i 0) ~below:(i iters)
              [ let_ "acc" (v "acc" +: v "j") ]
        @ [ return_ (v "acc") ]);
    ]

(* ---------------- promotion threshold ---------------- *)

(* Promotion fires when the back-edge count {e exceeds} the threshold:
   a loop of exactly [threshold] iterations stays cold, one more
   iteration promotes it mid-run. *)
let threshold_boundary () =
  let threshold = 7 in
  let at, stats_at = traced_run ~threshold (counted_loop threshold) in
  checki "stays cold at threshold" 0 stats_at.Trace_compile.promotions;
  let above, stats_above = traced_run ~threshold (counted_loop (threshold + 1)) in
  checki "promotes past threshold" 1 stats_above.Trace_compile.promotions;
  checkb "fused region compiled" true (stats_above.Trace_compile.regions >= 1);
  (* Either way the observables match the interpreter bit for bit. *)
  Alcotest.(check (list int))
    "cold run matches interp"
    (observe Engine.Interp (counted_loop threshold))
    at;
  Alcotest.(check (list int))
    "promoted run matches interp"
    (observe Engine.Interp (counted_loop (threshold + 1)))
    above

(* ---------------- guarded deoptimisation ---------------- *)

(* A branch that is always taken during warmup gets speculated; the
   tail iterations flip it, so every one must fail the guard and fall
   back to the interpreter's closure — without disturbing counters. *)
let deopt_path () =
  let p =
    program ~main:"main"
      [
        func "main" []
          (let_ "x" (i 0) :: let_ "y" (i 0)
           :: for_ "j" ~from:(i 0) ~below:(i 12)
                [
                  if_
                    (v "j" <: i 9)
                    [ let_ "x" (v "x" +: i 1) ]
                    [ let_ "y" (v "y" +: i 7) ];
                ]
          @ [ return_ ((v "x" *: i 100) +: v "y") ]);
      ]
  in
  let traced, stats = traced_run ~threshold:4 p in
  checki "result" ((9 * 100) + (3 * 7)) (List.hd traced);
  checkb "guard failures deopted" true (stats.Trace_compile.deopts >= 1);
  Alcotest.(check (list int))
    "deopt run matches interp" (observe Engine.Interp p) traced

(* ---------------- observable equivalence ---------------- *)

let equivalence_mixed () =
  let p =
    program ~main:"main"
      [
        func "sum" [ "ptr"; "n" ]
          (let_ "acc" (i 0)
           :: for_ "j" ~from:(i 0) ~below:(v "n")
                [ load "e" (v "ptr") (v "j" *: i 8);
                  let_ "acc" (v "acc" +: v "e") ]
          @ [ return_ (v "acc") ]);
        func "main" []
          (malloc "buf" (i 256)
           :: for_ "j" ~from:(i 0) ~below:(i 32)
                [ store (v "buf") (v "j" *: i 8) (v "j" *: v "j") ]
          @ [
              call ~dst:"s" "sum" [ v "buf"; i 32 ];
              free_ (v "buf");
              calloc "z" (i 16) (i 8);
              load "first" (v "z") (i 0);
              return_ (v "s" +: v "first");
            ]);
      ]
  in
  check_same_observables "mixed heap/loop/call program" p

let equivalence_rand () =
  (* Rand consumes the interpreter's stream; fused traces must draw in
     exactly the same order. *)
  let p =
    program ~main:"main"
      [
        func "main" []
          (let_ "acc" (i 0)
           :: for_ "j" ~from:(i 0) ~below:(i 40)
                [ let_ "acc" (v "acc" +: rand (i 100)) ]
          @ [ return_ (v "acc") ]);
      ]
  in
  check_same_observables "rand stream" p

(* ---------------- typed errors under both engines ---------------- *)

let errors_both_engines () =
  let overflow =
    program ~main:"main"
      [ func "main" [] [ calloc "z" (i max_int) (i 8); return_ (i 0) ] ]
  in
  let bad_rand =
    program ~main:"main"
      [ func "main" [] [ let_ "r" (rand (i 0)); return_ (v "r") ] ]
  in
  List.iter
    (fun kind ->
      let name = Engine.to_string kind in
      checkb (name ^ " calloc overflow") true
        (try
           ignore (observe kind overflow);
           false
         with
        | Interp_error.Error
            { cause = Interp_error.Calloc_overflow _; fname = "main"; _ } ->
            true);
      checkb (name ^ " rand bound") true
        (try
           ignore (observe kind bad_rand);
           false
         with
        | Interp_error.Error
            { cause = Interp_error.Rand_bound 0; fname = "main"; _ } ->
            true))
    Engine.all

(* ---------------- selfcheck oracle ---------------- *)

let selfcheck_clean () =
  let p = counted_loop 64 in
  let traced, stats = traced_run ~mode:Trace_compile.Selfcheck ~threshold:2 p in
  checkb "checkpoints happened" true (stats.Trace_compile.checkpoints >= 1);
  Alcotest.(check (list int))
    "selfcheck run matches interp" (observe Engine.Interp p) traced

(* cost_skew charges every fused chunk one extra instruction — exactly
   the class of bug (engine disagrees with interpreter on the timing
   model) the oracle exists to catch. It must fire at the very first
   checkpointed region and name it. *)
let selfcheck_catches_skew () =
  let p = counted_loop 64 in
  checkb "divergence raised" true
    (try
       ignore (traced_run ~mode:Trace_compile.Selfcheck ~threshold:2 ~cost_skew:1 p);
       false
     with Trace_compile.Divergence { region; detail; _ } ->
       checkb "region names main" true
         (String.length region >= 4 && String.sub region 0 4 = "main");
       checkb "detail mentions instructions" true
         (let has_sub s sub =
            let n = String.length s and m = String.length sub in
            let rec go k = k + m <= n && (String.sub s k m = sub || go (k + 1)) in
            go 0
          in
          has_sub detail "instructions");
       true)

(* Fast mode must ignore the skew injection hook entirely? No — the
   skew is charged in Fast mode too (it models a buggy engine); what
   matters is that Selfcheck is what catches it. A skewed Fast run
   simply reports skewed instruction counts. *)
let fast_skew_is_visible () =
  let p = counted_loop 64 in
  let skewed = List.nth (fst (traced_run ~threshold:2 ~cost_skew:1 p)) 1 in
  let clean = List.nth (observe ~threshold:2 Engine.Traced p) 1 in
  checkb "skew shifts instruction count" true (skewed > clean)

(* ---------------- generative equivalence ---------------- *)

let qcheck_equivalence =
  QCheck2.Test.make ~name:"traced ≡ interp on generated programs" ~count:60
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let case = Fuzz_gen.generate ~seed () in
      let run kind =
        let vmem = Vmem.create () in
        let alloc = Jemalloc_sim.create vmem in
        let e =
          Engine.create ~kind ~threshold:2 ~seed:2
            ~program:case.Fuzz_gen.ref_ ~alloc ()
        in
        let ret =
          try Ok (Engine.run e) with exn -> Error (Printexc.to_string exn)
        in
        (ret, Engine.instructions e, Engine.load_store_counts e)
      in
      run Engine.Interp = run Engine.Traced
      && run Engine.Interp = run Engine.Selfcheck)

let suite =
  [
    ("threshold boundary", `Quick, threshold_boundary);
    ("deopt path", `Quick, deopt_path);
    ("equivalence: mixed program", `Quick, equivalence_mixed);
    ("equivalence: rand stream", `Quick, equivalence_rand);
    ("typed errors under all engines", `Quick, errors_both_engines);
    ("selfcheck: clean run", `Quick, selfcheck_clean);
    ("selfcheck: catches injected skew", `Quick, selfcheck_catches_skew);
    ("fast mode: skew visible", `Quick, fast_skew_is_visible);
    QCheck_alcotest.to_alcotest qcheck_equivalence;
  ]
