(* Integration tests for the experiment harness: the headline result
   shapes that EXPERIMENTS.md reports must hold for the committed
   workloads, so a regression in any pipeline stage shows up here. These
   run the real measurement machinery on test-friendly subsets. *)

let checkb = Alcotest.check Alcotest.bool

let w name = Option.get (Workloads.find name)

let health_ordering () =
  (* health: HALO > HDS > 0 on both metrics, per Figures 13/14. *)
  let hw = w "health" in
  let base = Runner.run hw Runner.Jemalloc in
  let halo = Runner.run hw Runner.Halo in
  let hds = Runner.run hw Runner.Hds in
  let mr m = Runner.miss_reduction_vs ~baseline:base m in
  checkb "halo reduces misses" true (mr halo > 0.05);
  checkb "hds reduces misses" true (mr hds > 0.02);
  checkb "halo beats hds" true (mr halo > mr hds);
  checkb "halo speeds up" true (Runner.speedup_vs ~baseline:base halo > 0.05)

let povray_wrapper_defeats_hds () =
  let pw = w "povray" in
  let base = Runner.run pw Runner.Jemalloc in
  let halo = Runner.run pw Runner.Halo in
  let hds = Runner.run pw Runner.Hds in
  checkb "halo reduces misses" true
    (Runner.miss_reduction_vs ~baseline:base halo > 0.05);
  checkb "hds achieves nothing" true
    (Float.abs (Runner.miss_reduction_vs ~baseline:base hds) < 0.05)

let roms_hds_degrades () =
  let rw = w "roms" in
  let base = Runner.run rw Runner.Jemalloc in
  let halo = Runner.run rw Runner.Halo in
  let hds = Runner.run rw Runner.Hds in
  checkb "hds increases misses" true
    (Runner.miss_reduction_vs ~baseline:base hds < 0.0);
  checkb "halo does not degrade" true
    (Runner.miss_reduction_vs ~baseline:base halo >= -0.01)

let instrumentation_overhead_noise () =
  (* §5.2: the BOLT-instrumented binary without the allocator is noise. *)
  let hw = w "health" in
  let base = Runner.run hw Runner.Jemalloc in
  let ctrl = Runner.run hw Runner.Halo_no_alloc in
  checkb "overhead within 1%" true
    (Float.abs (Runner.speedup_vs ~baseline:base ctrl) < 0.01)

let jemalloc_beats_ptmalloc () =
  let hw = w "health" in
  let je = Runner.run hw Runner.Jemalloc in
  let pt = Runner.run hw Runner.Ptmalloc in
  checkb "jemalloc fewer misses" true
    (je.Runner.counters.Hierarchy.l1_misses
    < pt.Runner.counters.Hierarchy.l1_misses)

let measurements_deterministic () =
  let hw = w "ft" in
  let a = Runner.run hw Runner.Halo in
  let b = Runner.run hw Runner.Halo in
  Alcotest.check Alcotest.int "same misses"
    a.Runner.counters.Hierarchy.l1_misses b.Runner.counters.Hierarchy.l1_misses;
  Alcotest.check Alcotest.int "same instructions" a.Runner.instructions
    b.Runner.instructions

let halo_details_populated () =
  let m = Runner.run (w "ft") Runner.Halo in
  match m.Runner.halo with
  | None -> Alcotest.fail "halo details missing"
  | Some h ->
      checkb "groups" true (h.Runner.groups >= 1);
      checkb "sites monitored" true (h.Runner.monitored_sites >= 1);
      checkb "grouped traffic" true (h.Runner.grouped_mallocs > 100)

let hds_details_populated () =
  let m = Runner.run (w "ft") Runner.Hds in
  match m.Runner.hds with
  | None -> Alcotest.fail "hds details missing"
  | Some h ->
      checkb "trace collected" true (h.Runner.trace_length > 1000);
      checkb "streams counted" true (h.Runner.stream_count > 0)

let fig12_sweep_runs () =
  let t = Figures.fig12 ~distances:[ 8; 128 ] () in
  let s = Table.render t in
  checkb "two data rows rendered" true
    (List.length (String.split_on_char '\n' s) >= 7)

let suite_tables_render () =
  let suite = Figures.run_suite ~workloads:[ w "ft" ] () in
  List.iter
    (fun t -> checkb "renders" true (String.length (Table.render t) > 100))
    [ Figures.fig13 suite; Figures.fig14 suite; Figures.fig15 suite;
      Figures.hds_diagnostics suite ]

let tab1_renders_for_frag_workload () =
  let suite = Figures.run_suite ~workloads:[ w "ft" ] () in
  let s = Table.render (Figures.tab1 suite) in
  checkb "ft appears" true
    (String.split_on_char '\n' s
    |> List.exists (fun l ->
           String.length l > 2 && String.index_opt l 'f' <> None
           && String.index_opt l 't' <> None))

let identification_granularity_ordering () =
  (* §2.2.3 / §3: immediate site < xor-4 < full context, with xor-4 dying
     exactly on deep call chains (xalanc). *)
  let xw = w "xalanc" in
  let base = Runner.run xw Runner.Jemalloc in
  let site = Runner.run xw (Runner.Ident_window 1) in
  let xor4 = Runner.run xw (Runner.Ident_window 4) in
  let halo = Runner.run xw Runner.Halo in
  let mr m = Runner.miss_reduction_vs ~baseline:base m in
  checkb "site fails on xalanc" true (Float.abs (mr site) < 0.05);
  checkb "xor-4 fails on deep chains" true (Float.abs (mr xor4) < 0.05);
  checkb "full context wins" true (mr halo > 0.1);
  let pw = w "povray" in
  let pbase = Runner.run pw Runner.Jemalloc in
  checkb "xor-4 recovers shallow contexts (povray)" true
    (Runner.miss_reduction_vs ~baseline:pbase
       (Runner.run pw (Runner.Ident_window 4))
    > 0.05)

let sharded_backend_shapes () =
  (* §6 future work: sharding must preserve the miss reduction and
     dramatically cut leela's fragmentation. *)
  let lw = w "leela" in
  let base = Runner.run lw Runner.Jemalloc in
  let frag_of m =
    match m.Runner.halo with
    | Some h -> h.Runner.frag.Group_alloc.frag_pct
    | None -> Alcotest.fail "missing halo details"
  in
  let bump = Runner.run lw Runner.Halo in
  let cfg =
    { Pipeline.default_config with
      Pipeline.allocator =
        { Pipeline.default_config.Pipeline.allocator with
          Group_alloc.backend = Group_alloc.Sharded_free_lists } }
  in
  let sharded = Runner.run ~pipeline_config:cfg lw Runner.Halo in
  checkb "sharding keeps the miss reduction" true
    (Runner.miss_reduction_vs ~baseline:base sharded
    >= Runner.miss_reduction_vs ~baseline:base bump -. 0.02);
  checkb "sharding slashes fragmentation" true
    (frag_of sharded < 0.5 *. frag_of bump)

let suite_parallel_equivalence () =
  (* The tentpole invariant: every suite cell is an independent
     simulation, so fanning the workload×kind×seed grid over a domain
     pool must not perturb a single measurement. *)
  let workloads = [ w "ft"; w "health" ] in
  let seq = Figures.run_suite ~workloads ~jobs:1 () in
  let par = Figures.run_suite ~workloads ~jobs:4 () in
  List.iter
    (fun (wl : Workload.t) ->
      List.iter
        (fun kind ->
          let json s =
            List.map
              (fun m -> Json.to_string (Runner.to_json m))
              (Figures.runs_of s wl.Workload.name kind)
          in
          Alcotest.check
            (Alcotest.list Alcotest.string)
            (wl.Workload.name ^ " cell identical across jobs")
            (json seq) (json par))
        Figures.suite_kinds)
    workloads

let degenerate_suite_degrades_gracefully () =
  (* Regression for the List.map2 crash: a suite whose kind cells differ
     in length (fewer HALO runs than baseline seeds) must zip the common
     prefix, and a missing kind must render as "-", not raise. *)
  let hw = w "ft" in
  let base1 = Runner.run ~seed:2 hw Runner.Jemalloc in
  let base2 = Runner.run ~seed:3 hw Runner.Jemalloc in
  let halo1 = Runner.run ~seed:2 hw Runner.Halo in
  let degenerate =
    {
      Figures.workloads = [ hw ];
      seeds = [ 2; 3 ];
      data =
        [
          ( "ft",
            [ (Runner.Jemalloc, [ base1; base2 ]); (Runner.Halo, [ halo1 ]) ]
          );
        ];
    }
  in
  let vals =
    Figures.metric_values degenerate "ft" Runner.Halo
      (fun ~baseline m -> Runner.miss_reduction_vs ~baseline m)
  in
  Alcotest.check Alcotest.int "common prefix only" 1 (Array.length vals);
  let cell =
    Figures.metric_cell degenerate "ft" Runner.Halo (fun ~baseline m ->
        Runner.miss_reduction_vs ~baseline m)
  in
  checkb "short cell still renders a value" true (cell <> "-");
  Alcotest.check Alcotest.string "missing kind renders as dash" "-"
    (Figures.metric_cell degenerate "ft" Runner.Hds (fun ~baseline m ->
         Runner.miss_reduction_vs ~baseline m));
  (* The table renderers must survive the ragged suite end to end. *)
  List.iter
    (fun t -> checkb "renders" true (String.length (Table.render t) > 0))
    [ Figures.fig13 degenerate; Figures.fig14 degenerate;
      Figures.fig15 degenerate; Figures.tab1 degenerate ]

let suite =
  let tc name f = Alcotest.test_case name `Slow f in
  [
    tc "health: HALO > HDS > baseline" health_ordering;
    tc "povray: wrapper defeats HDS, not HALO" povray_wrapper_defeats_hds;
    tc "roms: HDS degrades, HALO neutral" roms_hds_degrades;
    tc "instrumentation overhead is noise" instrumentation_overhead_noise;
    tc "jemalloc beats ptmalloc" jemalloc_beats_ptmalloc;
    tc "measurements deterministic" measurements_deterministic;
    tc "halo run details populated" halo_details_populated;
    tc "hds run details populated" hds_details_populated;
    tc "figure 12 sweep runs" fig12_sweep_runs;
    tc "suite tables render" suite_tables_render;
    tc "table 1 renders" tab1_renders_for_frag_workload;
    tc "identification granularity ordering" identification_granularity_ordering;
    tc "sharded backend shapes" sharded_backend_shapes;
    tc "suite parallel equivalence" suite_parallel_equivalence;
    tc "degenerate suite degrades gracefully" degenerate_suite_degrades_gracefully;
  ]
