(* Tests for halo_fuzz: decision sources, the generator's determinism and
   structural pairing, the heap/plan oracles, the differential oracle
   end-to-end, shrinking, and the campaign harness.

   The fault-injection tests wire deliberately broken allocators into the
   oracle's [extra] battery and check that the violation is caught and
   minimised — the property the whole subsystem exists for. *)

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* ---------------- Dsource ---------------- *)

let dsource_record_replay_roundtrip () =
  let src = Dsource.recording (Rng.create ~seed:5) in
  let vals = List.init 20 (fun k -> Dsource.draw src (k + 2)) in
  let rep = Dsource.replaying (Dsource.trace src) in
  let vals' = List.init 20 (fun k -> Dsource.draw rep (k + 2)) in
  check (Alcotest.list Alcotest.int) "same decisions" vals vals'

let dsource_replay_clamps () =
  let rep = Dsource.replaying [| 100; 7 |] in
  checki "clamped with modulo" (100 mod 3) (Dsource.draw rep 3);
  checki "in-range value untouched" 7 (Dsource.draw rep 10)

let dsource_exhaustion_draws_zero () =
  let rep = Dsource.replaying [||] in
  checki "exhausted draw" 0 (Dsource.draw rep 9);
  checki "exhausted draw_in lands on lo" 4 (Dsource.draw_in rep 4 9);
  checki "exhausted weighted picks index 0" 0
    (Dsource.weighted rep [| 1; 5; 5 |])

let dsource_normalizes_trace () =
  (* Replay re-records effective values: the normalized trace is the
     clamped one, and replaying it again is a fixpoint. *)
  let rep = Dsource.replaying [| 100; 9; 42 |] in
  ignore (Dsource.draw rep 3 : int);
  ignore (Dsource.draw rep 5 : int);
  check
    (Alcotest.array Alcotest.int)
    "only consumed decisions, clamped" [| 100 mod 3; 9 mod 5 |]
    (Dsource.trace rep)

(* ---------------- Generator ---------------- *)

let gen_deterministic () =
  let a = Fuzz_gen.generate ~seed:33 () in
  let b = Fuzz_gen.generate ~seed:33 () in
  check (Alcotest.array Alcotest.int) "same trace" a.Fuzz_gen.trace
    b.Fuzz_gen.trace;
  check Alcotest.string "same ref program"
    (Ir_print.program_to_string a.Fuzz_gen.ref_)
    (Ir_print.program_to_string b.Fuzz_gen.ref_)

let gen_structural_pairing () =
  (* The profiled (test) and measured (ref) programs must get identical
     site assignments — the invariant the whole pipeline split rests on. *)
  for seed = 1 to 20 do
    let c = Fuzz_gen.generate ~seed () in
    check (Alcotest.list Alcotest.int) "same sites"
      (Ir.sites c.Fuzz_gen.test)
      (Ir.sites c.Fuzz_gen.ref_)
  done

let gen_of_trace_is_fixpoint () =
  let c = Fuzz_gen.generate ~seed:77 () in
  let c' = Fuzz_gen.of_trace ~seed:77 c.Fuzz_gen.trace in
  check (Alcotest.array Alcotest.int) "normalized trace" c.Fuzz_gen.trace
    c'.Fuzz_gen.trace;
  check Alcotest.string "same program"
    (Ir_print.program_to_string c.Fuzz_gen.ref_)
    (Ir_print.program_to_string c'.Fuzz_gen.ref_)

let gen_arbitrary_traces_valid () =
  (* Replay is total: any int array builds a program that finalizes and
     runs to completion. *)
  List.iteri
    (fun k trace ->
      let c = Fuzz_gen.of_trace ~seed:k trace in
      let vmem = Vmem.create () in
      let interp =
        Interp.create ~seed:2 ~program:c.Fuzz_gen.ref_
          ~alloc:(Jemalloc_sim.create vmem) ~memcheck:vmem ()
      in
      ignore (Interp.run interp : int))
    [ [||]; [| 0 |]; [| 9; 9; 9; 9; 9 |]; Array.make 80 max_int ]

(* ---------------- Heap_check ---------------- *)

(* Returns the same block twice on every second malloc: overlapping live
   objects, the classic catastrophic allocator bug. *)
let evil_overlap_alloc vmem =
  let base = Jemalloc_sim.create vmem in
  let count = ref 0 in
  let last = ref Addr.null in
  let malloc n =
    incr count;
    if !count mod 2 = 0 && !last <> Addr.null then !last
    else begin
      let a = base.Alloc_iface.malloc n in
      last := a;
      a
    end
  in
  { base with Alloc_iface.name = "evil-overlap"; malloc }

let heap_check_clean_allocator () =
  let vmem = Vmem.create () in
  let chk, iface = Heap_check.wrap (Jemalloc_sim.create vmem) in
  let a = iface.Alloc_iface.malloc 16 in
  let b = iface.Alloc_iface.malloc 32 in
  iface.Alloc_iface.free a;
  iface.Alloc_iface.free b;
  check (Alcotest.list Alcotest.string) "no violations" []
    (Heap_check.violations chk);
  checki "no live blocks left" 0 (Heap_check.live_blocks chk)

let heap_check_catches_overlap () =
  let vmem = Vmem.create () in
  let chk, iface = Heap_check.wrap (evil_overlap_alloc vmem) in
  let a = iface.Alloc_iface.malloc 16 in
  let b = iface.Alloc_iface.malloc 16 in
  checki "evil returned the same block" a b;
  checkb "violation recorded" true (Heap_check.violations chk <> [])

let heap_check_catches_misalignment () =
  let vmem = Vmem.create () in
  let base = Jemalloc_sim.create vmem in
  let skewed =
    { base with Alloc_iface.malloc = (fun n -> base.Alloc_iface.malloc n + 4) }
  in
  let chk, iface = Heap_check.wrap skewed in
  ignore (iface.Alloc_iface.malloc 8 : Addr.t);
  checkb "misalignment recorded" true
    (List.exists
       (fun v ->
         let has_sub needle =
           let nl = String.length needle and vl = String.length v in
           let rec go i =
             i + nl <= vl && (String.sub v i nl = needle || go (i + 1))
           in
           go 0
         in
         has_sub "aligned")
       (Heap_check.violations chk))

let heap_check_catches_unmatched_free () =
  let vmem = Vmem.create () in
  let base = Jemalloc_sim.create vmem in
  (* Swallow frees so the base allocator can't crash; the checker must
     still flag the bogus address. *)
  let chk, iface =
    Heap_check.wrap { base with Alloc_iface.free = (fun _ -> ()) }
  in
  iface.Alloc_iface.free 0x1234568;
  checkb "unmatched free recorded" true (Heap_check.violations chk <> [])

(* ---------------- Plan_check ---------------- *)

(* A seed whose plan actually monitors sites, so corruptions have
   something to corrupt. *)
let planned_case () =
  let rec find seed =
    if seed > 50 then Alcotest.fail "no seed produced a plan with patches"
    else
      let c = Fuzz_gen.generate ~seed () in
      let plan = Pipeline.plan c.Fuzz_gen.test in
      if plan.Pipeline.rewrite.Rewrite.patches <> [] then (c, plan)
      else find (seed + 1)
  in
  find 1

let plan_check_accepts_real_plans () =
  for seed = 1 to 15 do
    let c = Fuzz_gen.generate ~seed () in
    let plan = Pipeline.plan c.Fuzz_gen.test in
    check (Alcotest.list Alcotest.string) "well-formed" []
      (Plan_check.check ~program:c.Fuzz_gen.test plan)
  done

let plan_check_catches_oversized_bits () =
  let c, plan = planned_case () in
  let rw = plan.Pipeline.rewrite in
  let bad =
    {
      plan with
      Pipeline.rewrite = { rw with Rewrite.nbits = Rewrite.max_bits + 1 };
    }
  in
  checkb "flagged" true (Plan_check.check ~program:c.Fuzz_gen.test bad <> [])

let plan_check_catches_dead_patch_site () =
  let c, plan = planned_case () in
  let rw = plan.Pipeline.rewrite in
  let patches =
    match rw.Rewrite.patches with
    | (_, bit) :: rest -> (0xdead00, bit) :: rest
    | [] -> []
  in
  let bad = { plan with Pipeline.rewrite = { rw with Rewrite.patches } } in
  checkb "flagged" true (Plan_check.check ~program:c.Fuzz_gen.test bad <> [])

let plan_check_catches_dropped_selectors () =
  let c, plan = planned_case () in
  let bad = { plan with Pipeline.selectors = [] } in
  checkb "flagged" true (Plan_check.check ~program:c.Fuzz_gen.test bad <> [])

(* ---------------- Oracle ---------------- *)

let oracle_passes_healthy_pipeline () =
  for seed = 1 to 25 do
    let c = Fuzz_gen.generate ~seed () in
    let r = Fuzz_oracle.run_case c in
    (match r.Fuzz_oracle.failures with
    | [] -> ()
    | f :: _ ->
        Alcotest.failf "seed %d: [%s] %s" seed f.Fuzz_oracle.config
          f.Fuzz_oracle.reason);
    checkb "full battery ran" true (r.Fuzz_oracle.stats.Fuzz_oracle.configs >= 6)
  done

let oracle_deterministic () =
  let c = Fuzz_gen.generate ~seed:3 () in
  let a = Fuzz_oracle.run_case c in
  let b = Fuzz_oracle.run_case c in
  checki "same allocs" a.Fuzz_oracle.stats.Fuzz_oracle.allocs
    b.Fuzz_oracle.stats.Fuzz_oracle.allocs;
  checki "same accesses" a.Fuzz_oracle.stats.Fuzz_oracle.accesses
    b.Fuzz_oracle.stats.Fuzz_oracle.accesses;
  checki "same failure count"
    (List.length a.Fuzz_oracle.failures)
    (List.length b.Fuzz_oracle.failures)

let oracle_catches_evil_allocator () =
  let caught =
    List.exists
      (fun seed ->
        let c = Fuzz_gen.generate ~seed () in
        let r =
          Fuzz_oracle.run_case ~extra:[ ("evil", evil_overlap_alloc) ] c
        in
        List.exists
          (fun (f : Fuzz_oracle.failure) -> f.Fuzz_oracle.config = "evil")
          r.Fuzz_oracle.failures)
      [ 1; 2; 3; 4; 5; 6 ]
  in
  checkb "overlapping allocator detected" true caught

(* ---------------- Shrinker ---------------- *)

let shrink_minimises_evil_failure () =
  let extra = [ ("evil", evil_overlap_alloc) ] in
  let failing c =
    (Fuzz_oracle.run_case ~extra c).Fuzz_oracle.failures <> []
  in
  let rec first seed =
    if seed > 30 then Alcotest.fail "no failing seed found"
    else
      let c = Fuzz_gen.generate ~seed () in
      if failing c then c else first (seed + 1)
  in
  let c = first 1 in
  let r = Fuzz_shrink.shrink ~max_steps:800 ~failing c in
  checkb "shrunk case still fails" true (failing r.Fuzz_shrink.case);
  checkb "trace no longer" true
    (Array.length r.Fuzz_shrink.case.Fuzz_gen.trace
    <= Array.length c.Fuzz_gen.trace);
  let stmts = Fuzz_gen.stmt_count r.Fuzz_shrink.case.Fuzz_gen.ref_ in
  if stmts >= 30 then
    Alcotest.failf "shrunk case still has %d statements" stmts

let shrink_keeps_passing_case_intact () =
  (* With an unsatisfiable predicate nothing is ever accepted. *)
  let c = Fuzz_gen.generate ~seed:11 () in
  let r = Fuzz_shrink.shrink ~max_steps:50 ~failing:(fun _ -> false) c in
  checki "no mutation accepted" 0 r.Fuzz_shrink.accepted;
  check (Alcotest.array Alcotest.int) "case unchanged" c.Fuzz_gen.trace
    r.Fuzz_shrink.case.Fuzz_gen.trace

(* ---------------- Harness ---------------- *)

let harness_clean_campaign () =
  let s =
    Fuzz_harness.run { Fuzz_harness.default with Fuzz_harness.seeds = 30 }
  in
  checki "all cases ran" 30 s.Fuzz_harness.cases;
  checki "no violations" 0 s.Fuzz_harness.violations;
  check (Alcotest.list Alcotest.int) "no failing seeds" []
    s.Fuzz_harness.failing_seeds;
  checkb "allocations exercised" true (s.Fuzz_harness.allocs > 0)

let harness_replay_deterministic () =
  let c1, r1 = Fuzz_harness.replay 9 in
  let c2, r2 = Fuzz_harness.replay 9 in
  check (Alcotest.array Alcotest.int) "same trace" c1.Fuzz_gen.trace
    c2.Fuzz_gen.trace;
  checki "same allocs" r1.Fuzz_oracle.stats.Fuzz_oracle.allocs
    r2.Fuzz_oracle.stats.Fuzz_oracle.allocs

let harness_evil_campaign_saves_corpus () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "halo_fuzz_corpus_%d" (Unix.getpid ()))
  in
  let s =
    Fuzz_harness.run
      {
        Fuzz_harness.default with
        Fuzz_harness.seeds = 6;
        corpus_dir = Some dir;
        shrink_steps = 400;
        extra = [ ("evil", evil_overlap_alloc) ];
      }
  in
  checkb "violations found" true (s.Fuzz_harness.violations > 0);
  checkb "reports produced" true (s.Fuzz_harness.reports <> []);
  List.iter
    (fun (r : Fuzz_harness.case_report) ->
      match r.Fuzz_harness.saved_to with
      | Some path ->
          checkb "corpus file exists" true (Sys.file_exists path);
          checkb "corpus file is json" true
            (String.length r.Fuzz_harness.shrunk_program > 0
            && Json.to_string (Fuzz_harness.report_json r) <> "")
      | None -> Alcotest.fail "failing case was not saved")
    s.Fuzz_harness.reports;
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  Unix.rmdir dir

let harness_jobs_equivalence () =
  (* Campaign verdicts must be independent of the worker-domain count:
     every case carries its own decision stream, RNG and heaps, and the
     epilogue aggregates in seed order. *)
  let campaign jobs extra =
    Fuzz_harness.run
      {
        Fuzz_harness.default with
        Fuzz_harness.seeds = 20;
        shrink_steps = 400;
        jobs;
        extra;
      }
  in
  let a = campaign 1 [] and b = campaign 4 [] in
  checki "cases" a.Fuzz_harness.cases b.Fuzz_harness.cases;
  checki "violations" a.Fuzz_harness.violations b.Fuzz_harness.violations;
  checki "allocs" a.Fuzz_harness.allocs b.Fuzz_harness.allocs;
  checki "accesses" a.Fuzz_harness.accesses b.Fuzz_harness.accesses;
  check (Alcotest.list Alcotest.int) "failing seeds" a.Fuzz_harness.failing_seeds
    b.Fuzz_harness.failing_seeds;
  (* And with failures in play: identical reports, in seed order. *)
  let evil = [ ("evil", evil_overlap_alloc) ] in
  let a = campaign 1 evil and b = campaign 3 evil in
  checkb "evil campaign fails" true (a.Fuzz_harness.violations > 0);
  checki "violations" a.Fuzz_harness.violations b.Fuzz_harness.violations;
  check (Alcotest.list Alcotest.int) "failing seeds" a.Fuzz_harness.failing_seeds
    b.Fuzz_harness.failing_seeds;
  List.iter2
    (fun (ra : Fuzz_harness.case_report) (rb : Fuzz_harness.case_report) ->
      checki "report seed" ra.Fuzz_harness.seed rb.Fuzz_harness.seed;
      check (Alcotest.array Alcotest.int) "shrunk trace"
        ra.Fuzz_harness.shrunk_trace rb.Fuzz_harness.shrunk_trace;
      check Alcotest.string "shrunk program" ra.Fuzz_harness.shrunk_program
        rb.Fuzz_harness.shrunk_program)
    a.Fuzz_harness.reports b.Fuzz_harness.reports

let harness_time_budget_stops () =
  let s =
    Fuzz_harness.run
      {
        Fuzz_harness.default with
        Fuzz_harness.seeds = 1_000_000;
        time_budget = Some 0.2;
      }
  in
  checkb "stopped early" true (s.Fuzz_harness.cases < 1_000_000);
  checkb "did some work" true (s.Fuzz_harness.cases > 0)

(* ---------------- Semantic digest pinning ---------------- *)

(* Golden observables for seeds 1-3 at ref-scale 8 (same parameters as
   test/fuzz_digests_golden.json). Hard literals, on purpose: any change
   to interpreter/profiler/planner semantics — a paged-memory bug, a
   context-cache invalidation miss, a heap-model fast-path divergence —
   flips a digest and fails here, inside tier-1, without touching the
   filesystem. Re-record via
   `halo_cli fuzz --digests-out ... --seeds 60 --ref-scale 8` only when a
   semantic change is intended. *)
let digest_corpus_pinned () =
  let got = Fuzz_harness.digest_sweep ~ref_scale:8 ~seed_base:1 ~seeds:3 () in
  let expected =
    [
      {
        Fuzz_harness.d_seed = 1;
        d_failures = 0;
        d_ret = Ok 923331;
        d_dig =
          {
            Fuzz_observe.allocs = 9;
            frees = 4;
            accesses = 21;
            site_digest = 2757686650055092693;
            access_digest = 662406446348581391;
            free_digest = 1615652273819640566;
          };
        d_stats =
          {
            Fuzz_oracle.configs = 6;
            allocs = 54;
            accesses = 126;
            groups = 0;
            monitored = 0;
            contexts = 8;
          };
      };
      {
        Fuzz_harness.d_seed = 2;
        d_failures = 0;
        d_ret = Ok 165;
        d_dig =
          {
            Fuzz_observe.allocs = 2;
            frees = 2;
            accesses = 5;
            site_digest = 3807125274368679493;
            access_digest = 3719642374972706499;
            free_digest = 12650750086017498;
          };
        d_stats =
          {
            Fuzz_oracle.configs = 6;
            allocs = 12;
            accesses = 30;
            groups = 0;
            monitored = 0;
            contexts = 2;
          };
      };
      {
        Fuzz_harness.d_seed = 3;
        d_failures = 0;
        d_ret = Ok 5766;
        d_dig =
          {
            Fuzz_observe.allocs = 3;
            frees = 2;
            accesses = 4;
            site_digest = 4546001803694920757;
            access_digest = 3525967202767498767;
            free_digest = 12650750086017498;
          };
        d_stats =
          {
            Fuzz_oracle.configs = 6;
            allocs = 18;
            accesses = 24;
            groups = 0;
            monitored = 0;
            contexts = 3;
          };
      };
    ]
  in
  check (Alcotest.list Alcotest.string) "semantics pinned" []
    (Fuzz_harness.check_digests ~expected got)

let digest_json_roundtrip () =
  let records = Fuzz_harness.digest_sweep ~ref_scale:4 ~seed_base:7 ~seeds:5 () in
  match
    Fuzz_harness.digests_of_json
      (Fuzz_harness.digests_json ~ref_scale:4 records)
  with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok (scale, records') ->
      checki "ref_scale" 4 scale;
      check (Alcotest.list Alcotest.string) "records roundtrip" []
        (Fuzz_harness.check_digests ~expected:records records');
      checki "same count" (List.length records) (List.length records')

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "dsource: record/replay roundtrip" dsource_record_replay_roundtrip;
    tc "dsource: replay clamps" dsource_replay_clamps;
    tc "dsource: exhaustion draws zero" dsource_exhaustion_draws_zero;
    tc "dsource: trace normalized on replay" dsource_normalizes_trace;
    tc "gen: deterministic per seed" gen_deterministic;
    tc "gen: test/ref share sites" gen_structural_pairing;
    tc "gen: of_trace is a fixpoint" gen_of_trace_is_fixpoint;
    tc "gen: arbitrary traces build runnable programs"
      gen_arbitrary_traces_valid;
    tc "heap_check: clean allocator passes" heap_check_clean_allocator;
    tc "heap_check: overlap caught" heap_check_catches_overlap;
    tc "heap_check: misalignment caught" heap_check_catches_misalignment;
    tc "heap_check: unmatched free caught" heap_check_catches_unmatched_free;
    tc "plan_check: real plans accepted" plan_check_accepts_real_plans;
    tc "plan_check: oversized bit vector caught"
      plan_check_catches_oversized_bits;
    tc "plan_check: dead patch site caught" plan_check_catches_dead_patch_site;
    tc "plan_check: dropped selectors caught"
      plan_check_catches_dropped_selectors;
    tc "oracle: healthy pipeline passes 25 seeds" oracle_passes_healthy_pipeline;
    tc "oracle: deterministic" oracle_deterministic;
    tc "oracle: evil allocator caught" oracle_catches_evil_allocator;
    tc "shrink: evil failure minimised below 30 stmts"
      shrink_minimises_evil_failure;
    tc "shrink: nothing accepted on passing case"
      shrink_keeps_passing_case_intact;
    tc "harness: clean campaign" harness_clean_campaign;
    tc "harness: replay deterministic" harness_replay_deterministic;
    tc "harness: evil campaign shrinks and saves corpus"
      harness_evil_campaign_saves_corpus;
    tc "harness: verdicts independent of jobs" harness_jobs_equivalence;
    tc "harness: time budget stops campaign" harness_time_budget_stops;
    tc "digests: corpus semantics pinned" digest_corpus_pinned;
    tc "digests: json roundtrip" digest_json_roundtrip;
  ]
