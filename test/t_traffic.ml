(* Tests for halo_traffic: the schedule combinator language (curve
   evaluation, validation, deterministic event lowering, mix-spec text
   round-trips), the shared-heap mix executor, and the drift study's
   --jobs invariance. The golden digest pins the event stream's identity
   — any change to rate lowering, apportionment or per-tenant seed
   derivation flips it and fails here, inside tier-1. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string
let checkf = Alcotest.check (Alcotest.float 1e-9)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ---------------- curves ---------------- *)

let curve_eval () =
  checkf "const" 3.0 (Schedule.eval (Schedule.Const 3.0) ~pos:0.4);
  checkf "linear start" 2.0
    (Schedule.eval (Schedule.Linear { from_ = 2.0; to_ = 6.0 }) ~pos:0.0);
  checkf "linear end" 6.0
    (Schedule.eval (Schedule.Linear { from_ = 2.0; to_ = 6.0 }) ~pos:1.0);
  checkf "linear mid" 4.0
    (Schedule.eval (Schedule.Linear { from_ = 2.0; to_ = 6.0 }) ~pos:0.5);
  checkf "pos clamped low" 2.0
    (Schedule.eval (Schedule.Linear { from_ = 2.0; to_ = 6.0 }) ~pos:(-1.0));
  checkf "pos clamped high" 6.0
    (Schedule.eval (Schedule.Linear { from_ = 2.0; to_ = 6.0 }) ~pos:2.0);
  checkf "exp is geometric" 2.0
    (Schedule.eval (Schedule.Exp { from_ = 1.0; to_ = 4.0 }) ~pos:0.5)

(* ---------------- validation ---------------- *)

let rejected s =
  match Schedule.validate s with Error _ -> true | Ok () -> false

let validate_rejects () =
  let t = Schedule.tenant "health" in
  checkb "zero ticks" true
    (rejected [ Schedule.phase ~label:"p" ~ticks:0 ~rate:(Schedule.Const 1.0) [ t ] ]);
  checkb "negative rate" true
    (rejected
       [ Schedule.phase ~label:"p" ~ticks:1 ~rate:(Schedule.Const (-1.0)) [ t ] ]);
  checkb "exp endpoint zero" true
    (rejected
       [
         Schedule.phase ~label:"p" ~ticks:1
           ~rate:(Schedule.Exp { from_ = 0.0; to_ = 1.0 })
           [ t ];
       ]);
  checkb "burst wider than period" true
    (rejected
       [
         Schedule.phase ~label:"p" ~ticks:2
           ~burst:{ Schedule.period = 2; width = 3; gain = 2.0 }
           ~rate:(Schedule.Const 1.0) [ t ];
       ]);
  checkb "duplicate tenant names" true
    (rejected
       [ Schedule.phase ~label:"p" ~ticks:1 ~rate:(Schedule.Const 1.0) [ t; t ] ]);
  (match
     Schedule.validate
       [
         Schedule.phase ~label:"p" ~ticks:1 ~rate:(Schedule.Const 1.0)
           [ Schedule.tenant "nosuch" ];
       ]
   with
  | Ok () -> Alcotest.fail "unknown workload accepted"
  | Error e ->
      checkb "error names the workload" true (contains e "nosuch");
      checkb "error lists known names" true (contains e "health"));
  checkb "valid schedule accepted" false
    (rejected [ Schedule.phase ~label:"p" ~ticks:3 ~rate:(Schedule.Const 2.0) [ t ] ]);
  Alcotest.check_raises "events validates"
    (Invalid_argument "Schedule.events: phase 0 (p): ticks must be positive")
    (fun () ->
      ignore
        (Schedule.events ~seed:1
           [ Schedule.phase ~label:"p" ~ticks:0 ~rate:(Schedule.Const 1.0) [ t ] ]))

(* ---------------- event lowering ---------------- *)

(* The golden schedule: a ramp, a pause, and a burst phase with an
   exp-share tenant — one of everything the grammar can say. *)
let golden_spec =
  "# golden mixed schedule\n\
   phase warm ticks=4 rate=ramp:2:6 tenants=health:0.7,ft:0.3\n\
   pause cool ticks=2\n\
   phase hot ticks=3 rate=6 burst=3:1:2 tenants=ft@spike:exp:0.5:2.0,health\n"

let golden_schedule () =
  [
    Schedule.phase ~label:"warm" ~ticks:4
      ~rate:(Schedule.Linear { from_ = 2.0; to_ = 6.0 })
      [
        Schedule.tenant ~share:(Schedule.Const 0.7) "health";
        Schedule.tenant ~share:(Schedule.Const 0.3) "ft";
      ];
    Schedule.pause ~label:"cool" ~ticks:2;
    Schedule.phase ~label:"hot" ~ticks:3 ~rate:(Schedule.Const 6.0)
      ~burst:{ Schedule.period = 3; width = 1; gain = 2.0 }
      [
        Schedule.tenant ~name:"spike"
          ~share:(Schedule.Exp { from_ = 0.5; to_ = 2.0 })
          "ft";
        Schedule.tenant "health";
      ];
  ]

(* Hard literal, on purpose: re-derive via
   `halo traffic events --spec <golden> --seed 1` only when a change to
   the event-lowering semantics is intended. *)
let golden_digest = "1cf18d60798012d3"

let events_golden_pinned () =
  let evs = Schedule.events ~seed:1 (golden_schedule ()) in
  checki "event count" 40 (List.length evs);
  checks "digest pinned" golden_digest (Schedule.digest evs)

let events_deterministic () =
  let s = golden_schedule () in
  checks "same seed, same stream"
    (Schedule.digest (Schedule.events ~seed:1 s))
    (Schedule.digest (Schedule.events ~seed:1 s));
  checkb "seed only moves per-job seeds" false
    (Schedule.digest (Schedule.events ~seed:1 s)
    = Schedule.digest (Schedule.events ~seed:2 s))

let shape_of evs =
  List.map
    (fun (e : Schedule.event) -> (e.Schedule.ev_tick, e.Schedule.ev_tenant))
    evs

let shape_is_seed_independent () =
  (* Rate lowering and apportionment are error-diffused, never drawn from
     the RNG: two seeds must emit the same (tick, tenant) sequence. *)
  let s = golden_schedule () in
  Alcotest.(check (list (pair int string)))
    "identical (tick, tenant) sequence"
    (shape_of (Schedule.events ~seed:1 s))
    (shape_of (Schedule.events ~seed:99 s))

let integral_rate_is_exact () =
  (* A constant integral rate lowers to exactly rate * ticks jobs — the
     invariant the serve simulator's jobs_total accounting relies on. *)
  let s =
    [
      Schedule.phase ~label:"p" ~ticks:7 ~rate:(Schedule.Const 5.0)
        [ Schedule.tenant "health"; Schedule.tenant "ft" ];
    ]
  in
  checki "rate * ticks" 35 (List.length (Schedule.events ~seed:1 s));
  checki "pause emits nothing" 0
    (List.length (Schedule.events ~seed:1 [ Schedule.pause ~label:"z" ~ticks:9 ]))

let tenant_events evs name =
  List.filter_map
    (fun (e : Schedule.event) ->
      if e.Schedule.ev_tenant = name then
        Some (e.Schedule.ev_tick, e.Schedule.ev_seed)
      else None)
    evs

let tenant_reorder_invariant () =
  (* Reversing the tenant declaration order must not change any tenant's
     own subsequence — counts or seeds. *)
  let tenants =
    [
      Schedule.tenant ~name:"a" ~share:(Schedule.Const 3.0) "health";
      Schedule.tenant ~name:"b" ~share:(Schedule.Const 1.0) "ft";
      Schedule.tenant ~name:"c" ~share:(Schedule.Const 2.0) "leela";
    ]
  in
  let sched ts =
    [
      Schedule.phase ~label:"p" ~ticks:5
        ~rate:(Schedule.Linear { from_ = 3.0; to_ = 8.0 })
        ts;
    ]
  in
  let fwd = Schedule.events ~seed:4 (sched tenants)
  and rev = Schedule.events ~seed:4 (sched (List.rev tenants)) in
  List.iter
    (fun n ->
      Alcotest.(check (list (pair int int)))
        (n ^ "'s substream survives reordering") (tenant_events fwd n)
        (tenant_events rev n))
    [ "a"; "b"; "c" ]

(* qcheck: the same property under random shares, rates and permutations. *)
let prop_tenant_reorder =
  let pool = [| "health"; "ft"; "analyzer"; "art"; "leela" |] in
  QCheck2.Test.make
    ~name:"schedule: tenant substreams invariant under tenant reordering"
    ~count:60
    QCheck2.Gen.(
      quad (int_range 1 6) (int_range 0 1000) (int_range 1 9)
        (list_size (int_range 2 5) (int_range 1 9)))
    (fun (ticks, seed, rate, shares) ->
      let tenants =
        List.mapi
          (fun i s ->
            Schedule.tenant
              ~name:(Printf.sprintf "t%d" i)
              ~share:(Schedule.Const (float_of_int s))
              pool.(i mod Array.length pool))
          shares
      in
      let sched ts =
        [
          Schedule.phase ~label:"p" ~ticks
            ~rate:(Schedule.Const (float_of_int rate))
            ts;
        ]
      in
      let fwd = Schedule.events ~seed (sched tenants)
      and rev = Schedule.events ~seed (sched (List.rev tenants)) in
      List.for_all
        (fun (t : Schedule.tenant) ->
          tenant_events fwd t.Schedule.t_name
          = tenant_events rev t.Schedule.t_name)
        tenants)

(* ---------------- mix-spec text format ---------------- *)

let spec_roundtrip () =
  let s = golden_schedule () in
  match Schedule.of_spec (Schedule.to_spec s) with
  | Error e -> Alcotest.fail ("to_spec output did not re-parse: " ^ e)
  | Ok s' ->
      checks "round-trip preserves the event stream" golden_digest
        (Schedule.digest (Schedule.events ~seed:1 s'))

let spec_parses_golden () =
  match Schedule.of_spec golden_spec with
  | Error e -> Alcotest.fail e
  | Ok s ->
      checki "three phases" 3 (List.length s);
      checki "nine ticks" 9 (Schedule.total_ticks s);
      checks "spec and combinators agree" golden_digest
        (Schedule.digest (Schedule.events ~seed:1 s))

let spec_errors_located () =
  let err spec =
    match Schedule.of_spec spec with
    | Ok _ -> Alcotest.fail ("accepted bad spec: " ^ spec)
    | Error e -> e
  in
  checkb "unknown directive carries its line" true
    (contains (err "phase p ticks=2 rate=1 tenants=health\njunk here") "line 2");
  checkb "bad curve reported" true (contains (err "phase p ticks=2 rate=wat tenants=health") "line 1");
  checkb "missing key reported" true (contains (err "phase p rate=1 tenants=health") "line 1");
  checkb "validation failures surface" true
    (contains (err "phase p ticks=2 rate=1 tenants=nosuch") "nosuch")

(* ---------------- drifting shape ---------------- *)

let names_of (p : Schedule.phase) =
  List.map (fun (t : Schedule.tenant) -> t.Schedule.t_name) p.Schedule.p_tenants

let drifting_rotation_is_error_diffused () =
  let ws = [ "health"; "ft"; "analyzer" ] in
  (match Schedule.drifting ~workloads:ws ~phases:3 ~drift:0.0 () with
  | p0 :: rest ->
      List.iter
        (fun p ->
          Alcotest.(check (list string))
            "drift 0 never rotates" (names_of p0) (names_of p))
        rest
  | [] -> Alcotest.fail "no phases");
  (match Schedule.drifting ~workloads:ws ~phases:2 ~drift:1.0 () with
  | [ p0; p1 ] ->
      Alcotest.(check (list string)) "epoch 0 unrotated" ws (names_of p0);
      Alcotest.(check (list string))
        "drift 1 rotates once per epoch"
        [ "ft"; "analyzer"; "health" ] (names_of p1)
  | _ -> Alcotest.fail "expected two phases");
  (* drift 0.5 crosses an integer boundary every second epoch. *)
  match Schedule.drifting ~workloads:ws ~phases:3 ~drift:0.5 () with
  | [ p0; p1; p2 ] ->
      Alcotest.(check (list string))
        "no rotation before the carry crosses 1" (names_of p0) (names_of p1);
      checkb "rotation lands on the crossing" false (names_of p1 = names_of p2)
  | _ -> Alcotest.fail "expected three phases"

(* ---------------- mix executor ---------------- *)

let mix_workloads = [ "health"; "ft"; "analyzer"; "art"; "leela" ]

let mix_sched drift =
  Schedule.drifting ~workloads:mix_workloads ~phases:3 ~ticks_per_phase:2
    ~rate:3.0 ~drift ()

let mix_config every =
  { Traffic_mix.default_config with Traffic_mix.reprofile_every = every }

let mix_executor_invariants () =
  let sched = mix_sched 1.0 in
  let evs = Schedule.events ~seed:3 sched in
  let r = Traffic_mix.run ~config:(mix_config 2) ~seed:3 sched in
  checki "one job per event" (List.length evs) r.Traffic_mix.jobs;
  checks "schedule digest carried" (Schedule.digest evs)
    r.Traffic_mix.schedule_digest;
  checkb "coverage bounded" true
    (r.Traffic_mix.coverage >= 0.0 && r.Traffic_mix.coverage <= 1.0);
  checkb "covered within jobs" true
    (r.Traffic_mix.covered_jobs <= r.Traffic_mix.jobs);
  checkb "replanned on cadence" true (r.Traffic_mix.replans > 1);
  checkb "profiler invoked" true (r.Traffic_mix.profile_runs > 0);
  checkb "net cycles charge profiling" true
    (r.Traffic_mix.net_cycles
    >= r.Traffic_mix.cycles +. float_of_int r.Traffic_mix.profile_accesses);
  checki "tenant stats partition the jobs" r.Traffic_mix.jobs
    (List.fold_left
       (fun a (t : Traffic_mix.tenant_stats) -> a + t.Traffic_mix.ts_jobs)
       0 r.Traffic_mix.tenants);
  checki "phase stats partition the jobs" r.Traffic_mix.jobs
    (List.fold_left
       (fun a (p : Traffic_mix.phase_stats) -> a + p.Traffic_mix.ph_jobs)
       0 r.Traffic_mix.phases)

let mix_executor_deterministic () =
  let sched = mix_sched 1.0 in
  let a = Traffic_mix.run ~config:(mix_config 2) ~seed:3 sched in
  let b = Traffic_mix.run ~config:(mix_config 2) ~seed:3 sched in
  checks "execution digest reproducible" a.Traffic_mix.exec_digest
    b.Traffic_mix.exec_digest;
  checks "full report reproducible"
    (Json.to_string (Traffic_mix.report_to_json a))
    (Json.to_string (Traffic_mix.report_to_json b))

let mix_reprofiling_recovers_coverage () =
  (* Under heavy drift the stale plan's covered set points at yesterday's
     traffic; re-planning on a cadence must recover coverage. *)
  let sched = mix_sched 1.0 in
  let stale = Traffic_mix.run ~config:(mix_config 0) ~seed:3 sched in
  let fresh = Traffic_mix.run ~config:(mix_config 2) ~seed:3 sched in
  checki "stale plans exactly once" 1 stale.Traffic_mix.replans;
  checkb "cadence recovers coverage" true
    (fresh.Traffic_mix.coverage > stale.Traffic_mix.coverage)

(* ---------------- drift study ---------------- *)

let study_params =
  {
    Traffic_study.default_params with
    Traffic_study.drifts = [ 0.0; 1.0 ];
    cadences = [ 0; 2 ];
    phases = 3;
    ticks_per_phase = 2;
    rate = 3.0;
    workloads = Some mix_workloads;
    seed = 5;
  }

let study_jobs_invariant () =
  let a = Traffic_study.run ~jobs:1 study_params in
  let b = Traffic_study.run ~jobs:4 study_params in
  checks "byte-identical at --jobs 1 vs 4"
    (Json.to_string (Traffic_study.to_json a))
    (Json.to_string (Traffic_study.to_json b));
  checki "full drift x cadence grid" 4 (List.length a.Traffic_study.cells);
  List.iter
    (fun (c : Traffic_study.cell) ->
      if c.Traffic_study.c_cadence = 0 then begin
        checkf "stale anchor has zero net speedup" 0.0
          c.Traffic_study.c_net_speedup;
        checkb "anchor never beats itself" false c.Traffic_study.c_beats_stale
      end)
    a.Traffic_study.cells;
  checkb "study table renders" true
    (contains (Table.render (Traffic_study.table a)) "drift")

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_tenant_reorder ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "schedule: curve evaluation" curve_eval;
    tc "schedule: validation rejects bad shapes" validate_rejects;
    tc "schedule: golden digest pinned" events_golden_pinned;
    tc "schedule: events deterministic per seed" events_deterministic;
    tc "schedule: shape is seed-independent" shape_is_seed_independent;
    tc "schedule: integral rates lower exactly" integral_rate_is_exact;
    tc "schedule: tenant reordering preserves substreams" tenant_reorder_invariant;
    tc "spec: golden round-trips through to_spec" spec_roundtrip;
    tc "spec: text and combinators agree" spec_parses_golden;
    tc "spec: errors carry line numbers" spec_errors_located;
    tc "drifting: rotation is error-diffused" drifting_rotation_is_error_diffused;
    tc "mix: executor invariants" mix_executor_invariants;
    tc "mix: execution digest reproducible" mix_executor_deterministic;
    tc "mix: re-profiling recovers coverage under drift" mix_reprofiling_recovers_coverage;
    tc "study: byte-identical across --jobs" study_jobs_invariant;
  ]
  @ qsuite
