(* Tests for the 11 evaluation workloads: structural invariants (the test
   and ref programs must share call-site sets so profile-on-test plans
   apply to ref runs), determinism, and the per-benchmark structural
   claims that the evaluation narrative depends on. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let registry_complete () =
  Alcotest.check (Alcotest.list Alcotest.string) "the paper's 11 benchmarks"
    [ "health"; "ft"; "analyzer"; "ammp"; "art"; "equake"; "povray"; "omnetpp";
      "xalanc"; "leela"; "roms" ]
    Workloads.names

let find_works () =
  checkb "find" true (Workloads.find "health" <> None);
  checkb "missing" true (Workloads.find "nope" = None)

let lookup_typed_error () =
  (match Workloads.lookup "health" with
  | Ok w -> Alcotest.check Alcotest.string "resolves" "health" w.Workload.name
  | Error _ -> Alcotest.fail "known workload rejected");
  match Workloads.lookup "nope" with
  | Ok _ -> Alcotest.fail "unknown workload accepted"
  | Error (Workloads.Unknown_workload { name; known } as e) ->
      Alcotest.check Alcotest.string "echoes the name" "nope" name;
      Alcotest.check
        (Alcotest.list Alcotest.string)
        "carries the registry" Workloads.names known;
      let msg = Workloads.lookup_error_to_string e in
      let contains s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      checkb "message quotes the name" true (contains msg "\"nope\"");
      checkb "message lists known names" true (contains msg "health")

let run_ok w scale seed =
  let program = w.Workload.make scale in
  let vmem = Vmem.create () in
  let alloc = Jemalloc_sim.create vmem in
  let t = Interp.create ~seed ~program ~alloc () in
  ignore (Interp.run t : int);
  Interp.instructions t

(* Per-workload: builds, runs, and test/ref share sites. *)
let per_workload w =
  let name = w.Workload.name in
  [
    Alcotest.test_case (name ^ ": test-scale program runs") `Quick (fun () ->
        checkb "instructions retired" true (run_ok w Workload.Test 1 > 1000));
    Alcotest.test_case (name ^ ": deterministic per seed") `Quick (fun () ->
        checki "same instruction count" (run_ok w Workload.Test 1)
          (run_ok w Workload.Test 1));
    Alcotest.test_case (name ^ ": test and ref share call sites") `Quick
      (fun () ->
        let st = Ir.sites (w.Workload.make Workload.Test) in
        let sr = Ir.sites (w.Workload.make Workload.Ref) in
        Alcotest.check (Alcotest.list Alcotest.int) "site sets equal" st sr);
    Alcotest.test_case (name ^ ": ref is larger than test") `Quick (fun () ->
        checkb "more work at ref scale" true
          (run_ok w Workload.Ref 1 > run_ok w Workload.Test 1));
  ]

(* Structural claims. *)

let povray_single_alloc_path () =
  (* Figure 2/§3: all of povray's heap allocation flows through the
     pov_malloc wrapper — exactly one malloc site in the program. *)
  let w = Option.get (Workloads.find "povray") in
  let p = w.Workload.make Workload.Test in
  checki "one allocation site" 1 (List.length (Ir.alloc_sites p))

let leela_single_alloc_path () =
  (* §5.2: leela allocates exclusively through operator new — one malloc
     site; the only other allocation is the board-pattern table's calloc
     (a large, never-grouped array). *)
  let w = Option.get (Workloads.find "leela") in
  let p = w.Workload.make Workload.Test in
  checki "operator new + pattern table" 2 (List.length (Ir.alloc_sites p))

let omnetpp_single_alloc_path () =
  let w = Option.get (Workloads.find "omnetpp") in
  let p = w.Workload.make Workload.Test in
  (* sim_alloc's malloc plus the forwarded queue/table callocs *)
  checkb "small-object path is one site" true
    (List.length (Ir.alloc_sites p) <= 5)

let health_direct_sites () =
  (* The prior-work suite exposes multiple direct allocation sites. *)
  let w = Option.get (Workloads.find "health") in
  let p = w.Workload.make Workload.Test in
  checkb "several distinct sites" true (List.length (Ir.alloc_sites p) >= 3)

let xalanc_deep_chain () =
  (* Allocation contexts must be deep (tens of frames in the paper; >= 7
     here): check via a profile that some context has many sites. *)
  let w = Option.get (Workloads.find "xalanc") in
  let r = Profiler.profile (w.Workload.make Workload.Test) in
  let deep =
    Context.fold r.Profiler.contexts ~init:0 ~f:(fun acc _ sites ->
        max acc (Array.length sites))
  in
  checkb "deep contexts" true (deep >= 7)

let workload_overrides_applied () =
  let omnetpp = Option.get (Workloads.find "omnetpp") in
  let cfg = omnetpp.Workload.halo_allocator Group_alloc.default_config in
  checki "128KiB chunks" (128 * 1024) cfg.Group_alloc.chunk_size;
  checkb "always reuse" true (cfg.Group_alloc.spare_policy = Group_alloc.Always_reuse);
  let roms = Option.get (Workloads.find "roms") in
  let gp = roms.Workload.halo_grouping Grouping.default_params in
  checkb "roms max-groups 4" true (gp.Grouping.max_groups = Some 4)

let frag_table_membership () =
  (* Table 1 lists 9 benchmarks; omnetpp and xalanc are excluded. *)
  let in_table =
    List.filter (fun w -> w.Workload.in_frag_table) Workloads.all
    |> List.map (fun w -> w.Workload.name)
  in
  checki "nine benchmarks" 9 (List.length in_table);
  checkb "omnetpp excluded" true (not (List.mem "omnetpp" in_table));
  checkb "xalanc excluded" true (not (List.mem "xalanc" in_table))

let roms_has_large_ungroupable_data () =
  (* roms' grids must be too large to track/group. *)
  let w = Option.get (Workloads.find "roms") in
  let r = Profiler.profile (w.Workload.make Workload.Test) in
  (* the grids (and pointer tables) are untracked; the pair records are *)
  checkb "pairs tracked" true (r.Profiler.tracked_allocs > 1000);
  (* affinity graph stays tiny (paper: 31 nodes for roms) *)
  checkb "few context nodes" true
    (List.length (Affinity_graph.nodes r.Profiler.graph) <= 31)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "registry: all 11 benchmarks" registry_complete;
    tc "registry: find" find_works;
    tc "registry: lookup's typed error lists known names" lookup_typed_error;
  ]
  @ List.concat_map per_workload Workloads.all
  @ [
      tc "povray: single allocation path" povray_single_alloc_path;
      tc "leela: single allocation path" leela_single_alloc_path;
      tc "omnetpp: factory allocation path" omnetpp_single_alloc_path;
      tc "health: direct sites" health_direct_sites;
      tc "xalanc: deep call chains" xalanc_deep_chain;
      tc "overrides: A.8 flags wired" workload_overrides_applied;
      tc "table 1: membership" frag_table_membership;
      tc "roms: large data untracked, graph small" roms_has_large_ungroupable_data;
    ]
