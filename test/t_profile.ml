(* Tests for halo_profile: Context interning, the Heap_model, the
   Affinity_queue (including the paper's Figure 5 example and each of the
   four constraints), the Affinity_graph and the Profiler. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ---------------- Context ---------------- *)

let context_intern_dedup () =
  let t = Context.create () in
  let a = Context.intern t [| 1; 2; 3 |] in
  let b = Context.intern t [| 1; 2; 3 |] in
  let c = Context.intern t [| 1; 2 |] in
  checki "same sites same id" a b;
  checkb "different sites differ" true (a <> c);
  checki "count" 2 (Context.count t)

let context_alloc_site () =
  let t = Context.create () in
  let id = Context.intern t [| 10; 20; 30 |] in
  checki "innermost" 30 (Context.alloc_site t id)

let context_label () =
  let t = Context.create () in
  let id = Context.intern t [| 1; 2 |] in
  Alcotest.check Alcotest.string "rendered" "s1 -> s2"
    (Context.label t (fun s -> "s" ^ string_of_int s) id)

let context_ids_dense () =
  let t = Context.create () in
  for k = 0 to 99 do
    checki "dense ids" k (Context.intern t [| k |])
  done

let context_empty_rejected () =
  let t = Context.create () in
  checkb "raises" true
    (try
       ignore (Context.intern t [||]);
       false
     with Invalid_argument _ -> true)

(* ---------------- Heap_model ---------------- *)

let heap_find_containing () =
  let h = Heap_model.create () in
  let o = Heap_model.on_alloc h ~addr:1000 ~size:64 ~ctx:0 in
  checkb "base" true ((Option.get (Heap_model.find h 1000)).Heap_model.oid = o.Heap_model.oid);
  checkb "interior" true ((Option.get (Heap_model.find h 1063)).Heap_model.oid = o.Heap_model.oid);
  checkb "one past end" true (Heap_model.find h 1064 = None);
  checkb "before" true (Heap_model.find h 999 = None)

let heap_free_untracks () =
  let h = Heap_model.create () in
  ignore (Heap_model.on_alloc h ~addr:1000 ~size:16 ~ctx:0);
  checkb "freed returns obj" true (Heap_model.on_free h ~addr:1000 <> None);
  checkb "gone" true (Heap_model.find h 1000 = None);
  checkb "double free returns None" true (Heap_model.on_free h ~addr:1000 = None)

let heap_seq_monotone () =
  let h = Heap_model.create () in
  let a = Heap_model.on_alloc h ~addr:0x100 ~size:8 ~ctx:0 in
  let b = Heap_model.on_alloc h ~addr:0x200 ~size:8 ~ctx:1 in
  checkb "seq increases" true (b.Heap_model.seq > a.Heap_model.seq);
  checkb "oids distinct" true (a.Heap_model.oid <> b.Heap_model.oid)

let heap_addr_reuse_new_identity () =
  let h = Heap_model.create () in
  let a = Heap_model.on_alloc h ~addr:0x100 ~size:8 ~ctx:0 in
  ignore (Heap_model.on_free h ~addr:0x100);
  let b = Heap_model.on_alloc h ~addr:0x100 ~size:8 ~ctx:1 in
  checkb "fresh oid at reused address" true (a.Heap_model.oid <> b.Heap_model.oid);
  checki "resolves to new owner" b.Heap_model.oid
    (Option.get (Heap_model.find h 0x104)).Heap_model.oid

let heap_ctx_allocs_in_range () =
  let h = Heap_model.create () in
  (* ctx 0 at seqs 0, 2, 4; ctx 1 at seqs 1, 3 *)
  for k = 0 to 4 do
    ignore (Heap_model.on_alloc h ~addr:(0x1000 + (k * 16)) ~size:8 ~ctx:(k mod 2))
  done;
  checkb "ctx0 in (0,4)" true (Heap_model.ctx_allocs_in_range h ~ctx:0 ~lo:0 ~hi:4);
  checkb "ctx0 in (0,2) is empty" false
    (Heap_model.ctx_allocs_in_range h ~ctx:0 ~lo:0 ~hi:2);
  checkb "ctx1 in (1,3) is empty" false
    (Heap_model.ctx_allocs_in_range h ~ctx:1 ~lo:1 ~hi:3);
  checkb "ctx1 in (0,3)" true (Heap_model.ctx_allocs_in_range h ~ctx:1 ~lo:0 ~hi:3);
  checkb "unknown ctx" false (Heap_model.ctx_allocs_in_range h ~ctx:9 ~lo:0 ~hi:100)

let heap_find_fast_paths_stay_coherent () =
  (* Hammer the last-hit cache and page side table: interleaved lookups
     across neighbouring objects, then a free, must never serve a stale
     object. *)
  let h = Heap_model.create () in
  let a = Heap_model.on_alloc h ~addr:0x1000 ~size:16 ~ctx:0 in
  let b = Heap_model.on_alloc h ~addr:0x1010 ~size:16 ~ctx:1 in
  let big = Heap_model.on_alloc h ~addr:0x9000 ~size:8192 ~ctx:2 in
  for _ = 1 to 3 do
    checki "a" a.Heap_model.oid (Option.get (Heap_model.find h 0x1008)).Heap_model.oid;
    checki "a again (cached)" a.Heap_model.oid
      (Option.get (Heap_model.find h 0x100f)).Heap_model.oid;
    checki "b" b.Heap_model.oid (Option.get (Heap_model.find h 0x1010)).Heap_model.oid;
    checki "big interior" big.Heap_model.oid
      (Option.get (Heap_model.find h 0xA123)).Heap_model.oid
  done;
  ignore (Heap_model.on_free h ~addr:0x1000);
  checkb "freed not served from cache" true (Heap_model.find h 0x1008 = None);
  checki "neighbour survives" b.Heap_model.oid
    (Option.get (Heap_model.find h 0x1018)).Heap_model.oid;
  ignore (Heap_model.on_free h ~addr:0x9000);
  checkb "big freed" true (Heap_model.find h 0xA123 = None)

let heap_log_queries_match_table_queries () =
  let h = Heap_model.create () in
  for k = 0 to 9 do
    ignore (Heap_model.on_alloc h ~addr:(0x1000 + (k * 16)) ~size:8 ~ctx:(k mod 3))
  done;
  let log0 = Heap_model.ctx_log h 0 in
  for lo = -1 to 10 do
    for hi = lo to 10 do
      checkb
        (Printf.sprintf "(%d,%d)" lo hi)
        (Heap_model.ctx_allocs_in_range h ~ctx:0 ~lo ~hi)
        (Heap_model.log_allocs_in_range log0 ~lo ~hi)
    done
  done;
  (* log_next: ctx 0 allocated at seqs 0, 3, 6, 9 *)
  checki "next after -1" 0 (Heap_model.log_next log0 ~after:(-1));
  checki "next after 0" 3 (Heap_model.log_next log0 ~after:0);
  checki "next after 5" 6 (Heap_model.log_next log0 ~after:5);
  checki "next after 9" max_int (Heap_model.log_next log0 ~after:9);
  (* The handle is live: later allocations appear. *)
  ignore (Heap_model.on_alloc h ~addr:0x2000 ~size:8 ~ctx:0);
  checki "next after 9 now" 10 (Heap_model.log_next log0 ~after:9)

(* ---------------- Affinity_queue ---------------- *)

(* Harness: a heap with [n] objects of one size allocated round-robin
   across contexts, and a queue recording reported pairs. *)
let mk_queue ?(affinity_distance = 32) ?(nctx = 10) ?(n = 10) () =
  let heap = Heap_model.create () in
  let objs =
    Array.init n (fun k ->
        Heap_model.on_alloc heap ~addr:(0x1000 + (k * 64)) ~size:8 ~ctx:(k mod nctx))
  in
  let pairs = ref [] in
  let q =
    Affinity_queue.create ~affinity_distance ~heap
      ~on_affinity:(fun x y -> pairs := (x, y) :: !pairs)
      ()
  in
  (heap, objs, pairs, q)

let queue_figure5 () =
  (* Figure 5: 10 objects, 4-byte accesses, A = 32: the newest element is
     affinitive to exactly the seven others to its left. *)
  let _, objs, pairs, q = mk_queue ~affinity_distance:32 ~nctx:10 ~n:10 () in
  for k = 0 to 8 do
    ignore (Affinity_queue.add q objs.(k) ~bytes:4 : bool)
  done;
  pairs := [];
  ignore (Affinity_queue.add q objs.(9) ~bytes:4 : bool);
  checki "seven affinitive relationships" 7 (List.length !pairs);
  (* they are objects 2..8, i.e. contexts 2..8 *)
  let ys = List.map snd !pairs |> List.sort compare in
  Alcotest.check (Alcotest.list Alcotest.int) "partners" [ 2; 3; 4; 5; 6; 7; 8 ] ys

let queue_dedup_constraint () =
  (* Consecutive accesses to one object are a single macro access. *)
  let _, objs, pairs, q = mk_queue () in
  checkb "first recorded" true (Affinity_queue.add q objs.(0) ~bytes:8);
  checkb "repeat deduplicated" false (Affinity_queue.add q objs.(0) ~bytes:8);
  checki "accesses" 1 (Affinity_queue.accesses q);
  checki "no pairs" 0 (List.length !pairs)

let queue_no_self_affinity () =
  (* The same object re-accessed later (non-consecutively) must not pair
     with itself. *)
  let _, objs, pairs, q = mk_queue () in
  ignore (Affinity_queue.add q objs.(0) ~bytes:8 : bool);
  ignore (Affinity_queue.add q objs.(1) ~bytes:8 : bool);
  pairs := [];
  ignore (Affinity_queue.add q objs.(0) ~bytes:8 : bool);
  (* pairs with obj1 only, not with its own older entry *)
  checki "one pair" 1 (List.length !pairs);
  checkb "partner is obj1" true (snd (List.hd !pairs) = 1)

let queue_no_double_counting () =
  (* An object appearing twice in the window counts once per traversal. *)
  let _, objs, pairs, q = mk_queue ~affinity_distance:64 () in
  ignore (Affinity_queue.add q objs.(0) ~bytes:8 : bool);
  ignore (Affinity_queue.add q objs.(1) ~bytes:8 : bool);
  ignore (Affinity_queue.add q objs.(0) ~bytes:8 : bool);
  (* window: [0;1;0] *)
  pairs := [];
  ignore (Affinity_queue.add q objs.(2) ~bytes:8 : bool);
  let partners = List.map snd !pairs |> List.sort compare in
  Alcotest.check (Alcotest.list Alcotest.int) "0 counted once" [ 0; 1 ] partners

let queue_co_allocatability () =
  (* Objects u (ctx x) and v (ctx y) with an intervening allocation from x
     are not co-allocatable. *)
  let heap = Heap_model.create () in
  let v = Heap_model.on_alloc heap ~addr:0x1000 ~size:8 ~ctx:7 in
  (* intervening allocation from ctx 5 *)
  ignore (Heap_model.on_alloc heap ~addr:0x2000 ~size:8 ~ctx:5);
  let u = Heap_model.on_alloc heap ~addr:0x3000 ~size:8 ~ctx:5 in
  let pairs = ref [] in
  let q =
    Affinity_queue.create ~affinity_distance:64 ~heap
      ~on_affinity:(fun x y -> pairs := (x, y) :: !pairs)
      ()
  in
  ignore (Affinity_queue.add q v ~bytes:8 : bool);
  ignore (Affinity_queue.add q u ~bytes:8 : bool);
  checki "not co-allocatable" 0 (List.length !pairs)

let queue_co_allocatable_adjacent () =
  (* Chronologically adjacent allocations are co-allocatable. *)
  let heap = Heap_model.create () in
  let v = Heap_model.on_alloc heap ~addr:0x1000 ~size:8 ~ctx:7 in
  let u = Heap_model.on_alloc heap ~addr:0x3000 ~size:8 ~ctx:5 in
  let pairs = ref [] in
  let q =
    Affinity_queue.create ~affinity_distance:64 ~heap
      ~on_affinity:(fun x y -> pairs := (x, y) :: !pairs)
      ()
  in
  ignore (Affinity_queue.add q v ~bytes:8 : bool);
  ignore (Affinity_queue.add q u ~bytes:8 : bool);
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "pair reported with newest first" [ (5, 7) ] !pairs

let queue_loop_edges_possible () =
  (* Distinct objects from one context produce (x, x). *)
  let heap = Heap_model.create () in
  let a = Heap_model.on_alloc heap ~addr:0x1000 ~size:8 ~ctx:3 in
  let b = Heap_model.on_alloc heap ~addr:0x2000 ~size:8 ~ctx:3 in
  let pairs = ref [] in
  let q =
    Affinity_queue.create ~affinity_distance:64 ~heap
      ~on_affinity:(fun x y -> pairs := (x, y) :: !pairs)
      ()
  in
  ignore (Affinity_queue.add q a ~bytes:8 : bool);
  ignore (Affinity_queue.add q b ~bytes:8 : bool);
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "loop pair" [ (3, 3) ] !pairs

let queue_window_trim () =
  let _, objs, _, q = mk_queue ~affinity_distance:32 () in
  for k = 0 to 9 do
    ignore (Affinity_queue.add q objs.(k) ~bytes:8 : bool)
  done;
  (* window is 32 bytes of 8-byte entries: at most ~4 live entries + the
     newest *)
  checkb "bounded" true (Affinity_queue.length q <= 6)

let queue_rejects_bad_args () =
  checkb "bad distance" true
    (try
       ignore
         (Affinity_queue.create ~affinity_distance:0 ~heap:(Heap_model.create ())
            ~on_affinity:(fun _ _ -> ())
            ());
       false
     with Invalid_argument _ -> true)

(* ---------------- Affinity_graph ---------------- *)

let graph_weights_accumulate () =
  let gr = Affinity_graph.create () in
  Affinity_graph.add_affinity gr 1 2;
  Affinity_graph.add_affinity gr 2 1;
  checki "undirected accumulation" 2 (Affinity_graph.weight gr 1 2);
  Affinity_graph.add_affinity gr 3 3;
  checki "loop edge" 1 (Affinity_graph.weight gr 3 3)

let graph_access_counts () =
  let gr = Affinity_graph.create () in
  Affinity_graph.add_access gr 1;
  Affinity_graph.add_access gr 1;
  Affinity_graph.add_access gr 2;
  checki "node accesses" 2 (Affinity_graph.node_accesses gr 1);
  checki "total" 3 (Affinity_graph.total_accesses gr);
  checki "absent node" 0 (Affinity_graph.node_accesses gr 99)

let graph_filter_top () =
  let gr = Affinity_graph.create () in
  (* node 0: 90 accesses, node 1: 9, node 2: 1 *)
  for _ = 1 to 90 do Affinity_graph.add_access gr 0 done;
  for _ = 1 to 9 do Affinity_graph.add_access gr 1 done;
  Affinity_graph.add_access gr 2;
  Affinity_graph.add_affinity gr 0 1;
  Affinity_graph.add_affinity gr 0 2;
  let f = Affinity_graph.filter_top gr ~coverage:0.9 in
  Alcotest.check (Alcotest.list Alcotest.int) "hottest kept" [ 0 ]
    (Affinity_graph.nodes f);
  checki "edges to dropped nodes gone" 0 (Affinity_graph.weight f 0 1);
  checki "reported total preserved" 100 (Affinity_graph.total_accesses f)

let graph_filter_keeps_enough () =
  let gr = Affinity_graph.create () in
  for _ = 1 to 50 do Affinity_graph.add_access gr 0 done;
  for _ = 1 to 30 do Affinity_graph.add_access gr 1 done;
  for _ = 1 to 20 do Affinity_graph.add_access gr 2 done;
  let f = Affinity_graph.filter_top gr ~coverage:0.9 in
  (* 50 + 30 = 80 < 90: node 2 must also be kept *)
  checki "three nodes" 3 (List.length (Affinity_graph.nodes f))

let graph_prune_edges () =
  let gr = Affinity_graph.create () in
  Affinity_graph.add_access gr 1;
  Affinity_graph.add_access gr 2;
  for _ = 1 to 5 do Affinity_graph.add_affinity gr 1 2 done;
  Affinity_graph.add_affinity gr 1 1;
  let p = Affinity_graph.prune_edges gr ~min_weight:3 in
  checki "heavy edge kept" 5 (Affinity_graph.weight p 1 2);
  checki "light loop dropped" 0 (Affinity_graph.weight p 1 1)

let graph_subgraph_weight () =
  let gr = Affinity_graph.create () in
  Affinity_graph.add_affinity gr 1 2;
  Affinity_graph.add_affinity gr 2 3;
  Affinity_graph.add_affinity gr 1 1;
  checki "subgraph 1,2 includes loop" 2 (Affinity_graph.subgraph_weight gr [ 1; 2 ]);
  checki "all" 3 (Affinity_graph.subgraph_weight gr [ 1; 2; 3 ])

(* ---------------- Profiler (integration) ---------------- *)

let profiled_pair_program () =
  let open Dsl in
  program ~main:"main"
    [
      func "mk_a" [] [ malloc "p" (i 16); return_ (v "p") ];
      func "mk_b" [] [ malloc "p" (i 16); return_ (v "p") ];
      func "main" []
        ([
           call ~dst:"a0" "mk_a" [];
           call ~dst:"b0" "mk_b" [];
           call ~dst:"a1" "mk_a" [];
           call ~dst:"b1" "mk_b" [];
         ]
        @ for_ "t" ~from:(i 0) ~below:(i 50)
            [
              load "x" (v "a0") (i 0);
              load "y" (v "b0") (i 0);
              load "x2" (v "a1") (i 0);
              load "y2" (v "b1") (i 0);
            ]);
    ]

let profiler_finds_affinity () =
  let p = profiled_pair_program () in
  let r = Profiler.profile p in
  (* Four contexts: each of main's call sites yields a distinct full
     context, even though mk_a/mk_b each have one malloc site — exactly
     the full-context discrimination the paper relies on. *)
  checki "four graph nodes" 4 (List.length (Affinity_graph.nodes r.Profiler.graph));
  let edges = Affinity_graph.edges r.Profiler.graph in
  checkb "cross edge exists" true
    (List.exists (fun (x, y, w) -> x <> y && w > 10) edges);
  checkb "accesses recorded" true (r.Profiler.total_accesses > 100);
  checki "four tracked allocs" 4 r.Profiler.tracked_allocs

let profiler_ignores_large_objects () =
  let open Dsl in
  let p =
    program ~main:"main"
      [
        func "main" []
          [
            malloc "big" (i 100_000);
            load "x" (v "big") (i 0);
            load "y" (v "big") (i 64);
          ];
      ]
  in
  let r = Profiler.profile p in
  checki "nothing tracked" 0 r.Profiler.tracked_allocs;
  checki "no accesses attributed" 0 r.Profiler.total_accesses

let profiler_deterministic () =
  let p1 = Profiler.profile (profiled_pair_program ()) in
  let p2 = Profiler.profile (profiled_pair_program ()) in
  checki "same totals" p1.Profiler.total_accesses p2.Profiler.total_accesses;
  checki "same node count"
    (List.length (Affinity_graph.nodes p1.Profiler.graph))
    (List.length (Affinity_graph.nodes p2.Profiler.graph))

(* qcheck: queue window invariant — the sum of live entry sizes behind the
   newest never exceeds A + one entry. *)
let prop_queue_window =
  QCheck2.Test.make ~name:"affinity queue: window stays bounded by A" ~count:100
    QCheck2.Gen.(
      pair (int_range 8 256) (list_size (int_range 1 200) (int_range 0 19)))
    (fun (a, accesses) ->
      let heap = Heap_model.create () in
      let objs =
        Array.init 20 (fun k ->
            Heap_model.on_alloc heap ~addr:(0x1000 + (k * 64)) ~size:8 ~ctx:k)
      in
      let q =
        Affinity_queue.create ~affinity_distance:a ~heap
          ~on_affinity:(fun _ _ -> ())
          ()
      in
      List.for_all
        (fun k ->
          ignore (Affinity_queue.add q objs.(k) ~bytes:8 : bool);
          (* every entry is 8 bytes; the window holds at most A/8 entries
             beyond the newest, plus the boundary entry *)
          Affinity_queue.length q <= (a / 8) + 2)
        accesses)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "context: intern dedup" context_intern_dedup;
    tc "context: alloc site" context_alloc_site;
    tc "context: label" context_label;
    tc "context: dense ids" context_ids_dense;
    tc "context: empty rejected" context_empty_rejected;
    tc "heap: find containing object" heap_find_containing;
    tc "heap: free untracks" heap_free_untracks;
    tc "heap: sequence numbers monotone" heap_seq_monotone;
    tc "heap: address reuse gets fresh identity" heap_addr_reuse_new_identity;
    tc "heap: ctx_allocs_in_range" heap_ctx_allocs_in_range;
    tc "heap: find fast paths stay coherent" heap_find_fast_paths_stay_coherent;
    tc "heap: log queries match table queries" heap_log_queries_match_table_queries;
    tc "queue: Figure 5 example" queue_figure5;
    tc "queue: deduplication constraint" queue_dedup_constraint;
    tc "queue: no self-affinity" queue_no_self_affinity;
    tc "queue: no double counting" queue_no_double_counting;
    tc "queue: co-allocatability veto" queue_co_allocatability;
    tc "queue: adjacent allocations co-allocatable" queue_co_allocatable_adjacent;
    tc "queue: loop pairs for same context" queue_loop_edges_possible;
    tc "queue: window trimming" queue_window_trim;
    tc "queue: argument validation" queue_rejects_bad_args;
    tc "graph: weights accumulate undirected" graph_weights_accumulate;
    tc "graph: access counts" graph_access_counts;
    tc "graph: 90% node filter" graph_filter_top;
    tc "graph: filter keeps enough coverage" graph_filter_keeps_enough;
    tc "graph: edge pruning" graph_prune_edges;
    tc "graph: subgraph weight with loops" graph_subgraph_weight;
    tc "profiler: finds cross-context affinity" profiler_finds_affinity;
    tc "profiler: ignores objects over 4KiB" profiler_ignores_large_objects;
    tc "profiler: deterministic" profiler_deterministic;
  ]
  @ [ QCheck_alcotest.to_alcotest prop_queue_window ]
