(* Tests for the persistent profile/plan store: canonical round-trips
   (property-tested over generated programs), a golden pin of the v1
   header bytes, one test per decode-rejection path, the structural
   program digest's scale-insensitivity, weighted cross-run merging, and
   the content-addressed plan cache's record/apply and warmed-run
   guarantees. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let w name = Option.get (Workloads.find name)

let tmp suffix = Filename.temp_file "halo-store-test" suffix

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "halo-store-test-%d-%d" (Unix.getpid ()) !n)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Store.error_to_string e)

let err what = function
  | Ok _ -> Alcotest.fail ("expected a decode error: " ^ what)
  | Error e -> e

(* One profiled workload, shared by the codec tests. *)
let profiled ?(config = Profiler.default_config) name =
  let prog = (w name).Workload.make Workload.Test in
  (prog, config, Profiler.profile ~config prog)

let sorted_edges g = List.sort compare (Affinity_graph.edges g)

let graphs_equal a b =
  List.sort compare (Affinity_graph.nodes a)
  = List.sort compare (Affinity_graph.nodes b)
  && List.for_all
       (fun id -> Affinity_graph.node_accesses a id = Affinity_graph.node_accesses b id)
       (Affinity_graph.nodes a)
  && sorted_edges a = sorted_edges b

(* ---------------- round-trips ---------------- *)

let profile_round_trip () =
  let prog, config, result = profiled "ft" in
  let path = tmp ".jsonl" in
  let digest = Ir_digest.program prog in
  ok
    (Store.write_profile ~created:1.0 ~producer:"t" ~path ~program_digest:digest
       ~config result);
  let a = ok (Store.read_profile ~expect_program:digest path) in
  checki "total accesses" result.Profiler.total_accesses
    a.Store.result.Profiler.total_accesses;
  checki "tracked allocs" result.Profiler.tracked_allocs
    a.Store.result.Profiler.tracked_allocs;
  checki "instructions" result.Profiler.instructions
    a.Store.result.Profiler.instructions;
  checki "context count"
    (Context.count result.Profiler.contexts)
    (Context.count a.Store.result.Profiler.contexts);
  for id = 0 to Context.count result.Profiler.contexts - 1 do
    checkb "context sites" true
      (Context.sites result.Profiler.contexts id
      = Context.sites a.Store.result.Profiler.contexts id)
  done;
  checkb "filtered graph round-trips" true
    (graphs_equal result.Profiler.graph a.Store.result.Profiler.graph);
  checkb "raw graph round-trips" true
    (graphs_equal result.Profiler.raw_graph a.Store.result.Profiler.raw_graph);
  checkb "reported total survives" true
    (Affinity_graph.reported_total result.Profiler.graph
    = Affinity_graph.reported_total a.Store.result.Profiler.graph);
  (* Canonical form: re-encoding the decoded artifact reproduces the
     bytes exactly. *)
  let path2 = tmp ".jsonl" in
  ok
    (Store.write_profile ~created:1.0 ~producer:"t" ~path:path2
       ~program_digest:digest ~config a.Store.result);
  checks "byte-stable re-encode" (read_file path) (read_file path2);
  Sys.remove path;
  Sys.remove path2

let plan_round_trip_prop_as format name =
  QCheck2.Test.make ~name ~count:8
    QCheck2.Gen.(int_range 1 1_000_000)
    (fun seed ->
      let case = Fuzz_gen.generate ~seed () in
      let plan = Pipeline.plan case.Fuzz_gen.test in
      let digest = Ir_digest.program case.Fuzz_gen.test in
      let path = tmp ".jsonl" in
      ok
        (Store.write_plan ~format ~created:2.0 ~producer:"t" ~path
           ~program_digest:digest plan);
      let _header, decoded = ok (Store.read_plan ~expect_program:digest path) in
      let structurally_equal =
        decoded.Pipeline.config = plan.Pipeline.config
        && decoded.Pipeline.grouping = plan.Pipeline.grouping
        && decoded.Pipeline.selectors = plan.Pipeline.selectors
        && decoded.Pipeline.rewrite = plan.Pipeline.rewrite
        && graphs_equal decoded.Pipeline.profile.Profiler.graph
             plan.Pipeline.profile.Profiler.graph
        && graphs_equal decoded.Pipeline.profile.Profiler.raw_graph
             plan.Pipeline.profile.Profiler.raw_graph
      in
      (* And the canonical form is a fixed point of encode∘decode. *)
      let path2 = tmp ".jsonl" in
      ok
        (Store.write_plan ~format ~created:2.0 ~producer:"t" ~path:path2
           ~program_digest:digest decoded);
      let byte_stable = String.equal (read_file path) (read_file path2) in
      Sys.remove path;
      Sys.remove path2;
      structurally_equal && byte_stable)

let plan_round_trip_prop =
  plan_round_trip_prop_as Store.V1
    "store: decode(encode plan) is structurally equal"

let plan_round_trip_v2_prop =
  plan_round_trip_prop_as Store.V2
    "store: decode(encode plan) is structurally equal (v2 binary)"

(* ---------------- golden v1 header ---------------- *)

let golden_header () =
  let prog, config, result = profiled "ft" in
  let path = tmp ".jsonl" in
  ok
    (Store.write_profile ~created:1700000000.0 ~producer:"golden" ~path
       ~program_digest:(Ir_digest.program prog) ~config result);
  let header_line =
    match String.split_on_char '\n' (read_file path) with
    | l :: _ -> l
    | [] -> Alcotest.fail "empty artifact"
  in
  Sys.remove path;
  checks "v1 header bytes"
    ("{\"format\":\"halo/store\",\"version\":1,\"kind\":\"profile\",\
      \"program\":\"" ^ Ir_digest.program prog
   ^ "\",\"config\":\"a44f7ef8caf217822d7a520db0a30566\",\
      \"created\":1700000000.0,\"producer\":\"golden\",\
      \"meta\":{\"profiler_config\":{\"affinity_distance\":128,\
      \"max_tracked_size\":4096,\"node_coverage\":0.90000000000000002,\
      \"seed\":1,\"sample_period\":1}}}")
    header_line

let golden_digests () =
  (* Pinned digest values: a change here is a format break and must bump
     the artifact version. *)
  checks "default profiler-config digest" "a44f7ef8caf217822d7a520db0a30566"
    (Store.profile_config_digest Profiler.default_config);
  checks "default pipeline-config digest" "a81527018dbd6dbea7ec52cefe82937e"
    (Store.plan_config_digest Pipeline.default_config);
  checks "ft structural digest" "d200e61eabefa4299a677a021e2c937e"
    (Ir_digest.program ((w "ft").Workload.make Workload.Test))

(* ---------------- rejection paths ---------------- *)

(* A small recorded artifact to corrupt, one fresh copy per test. *)
let recorded () =
  let prog, config, result = profiled "ft" in
  let path = tmp ".jsonl" in
  ok
    (Store.write_profile ~created:1.0 ~producer:"t" ~path
       ~program_digest:(Ir_digest.program prog) ~config result);
  path

let lines_of path =
  (* Content always ends with a newline, so drop the trailing "". *)
  match List.rev (String.split_on_char '\n' (read_file path)) with
  | "" :: rev -> List.rev rev
  | rev -> List.rev rev

let unlines ls = String.concat "\n" ls ^ "\n"

let replace_once ~sub ~by s =
  let n = String.length s and m = String.length sub in
  let rec find i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> s
  | Some i -> String.sub s 0 i ^ by ^ String.sub s (i + m) (n - (i + m))

let reject_truncated () =
  let path = recorded () in
  let ls = lines_of path in
  write_file path (unlines (List.filteri (fun i _ -> i < List.length ls - 1) ls));
  (match err "trailer dropped" (Store.read_profile path) with
  | Store.Truncated -> ()
  | e -> Alcotest.fail ("wanted Truncated, got " ^ Store.error_to_string e));
  Sys.remove path

let reject_bad_checksum () =
  let path = recorded () in
  let ls = lines_of path in
  (* Flip one digit inside the first payload line; the line count is
     unchanged, so the checksum is what must catch it. *)
  let flipped =
    List.mapi
      (fun i l ->
        if i <> 1 then l
        else
          String.map
            (fun ch -> if ch = '0' then '9' else if ch = '9' then '0' else ch)
            l)
      ls
  in
  write_file path (unlines flipped);
  (match err "payload bit-flip" (Store.read_profile path) with
  | Store.Bad_checksum _ -> ()
  | e -> Alcotest.fail ("wanted Bad_checksum, got " ^ Store.error_to_string e));
  Sys.remove path

let reject_version_skew () =
  let path = recorded () in
  let ls = lines_of path in
  let skewed =
    List.mapi
      (fun i l ->
        if i = 0 then
          replace_once ~sub:"\"version\":1," ~by:"\"version\":99," l
        else l)
      ls
  in
  write_file path (unlines skewed);
  (match err "version 99" (Store.read_header path) with
  | Store.Version_skew { found = 99; supported = 1 } -> ()
  | e -> Alcotest.fail ("wanted Version_skew, got " ^ Store.error_to_string e));
  Sys.remove path

let reject_wrong_kind () =
  let path = recorded () in
  (match err "profile read as plan" (Store.read_plan path) with
  | Store.Wrong_kind { found = "profile"; expected = "plan" } -> ()
  | e -> Alcotest.fail ("wanted Wrong_kind, got " ^ Store.error_to_string e));
  Sys.remove path

let reject_digest_mismatch () =
  let path = recorded () in
  let other = Ir_digest.program ((w "health").Workload.make Workload.Test) in
  (match
     err "foreign program" (Store.read_profile ~expect_program:other path)
   with
  | Store.Digest_mismatch { field = "program"; _ } -> ()
  | e -> Alcotest.fail ("wanted Digest_mismatch, got " ^ Store.error_to_string e));
  Sys.remove path

let reject_malformed_count () =
  let path = recorded () in
  let ls = lines_of path in
  (* Drop one payload line: the trailer's line count no longer matches. *)
  write_file path (unlines (List.filteri (fun i _ -> i <> 1) ls));
  (match err "payload line dropped" (Store.read_profile path) with
  | Store.Malformed _ -> ()
  | e -> Alcotest.fail ("wanted Malformed, got " ^ Store.error_to_string e));
  Sys.remove path

let reject_io () =
  match err "missing file" (Store.read_profile (tmp_dir () ^ "/nope.jsonl")) with
  | Store.Io _ -> ()
  | e -> Alcotest.fail ("wanted Io, got " ^ Store.error_to_string e)

(* ---------------- structural digest ---------------- *)

let digest_scale_insensitive () =
  List.iter
    (fun (wl : Workload.t) ->
      checks
        (wl.Workload.name ^ ": test and ref digests agree")
        (Ir_digest.program (wl.Workload.make Workload.Test))
        (Ir_digest.program (wl.Workload.make Workload.Ref)))
    Workloads.all

let digest_distinguishes_workloads () =
  let ds =
    List.map
      (fun (wl : Workload.t) ->
        Ir_digest.program (wl.Workload.make Workload.Test))
      Workloads.all
  in
  checki "all workload digests distinct"
    (List.length ds)
    (List.length (List.sort_uniq compare ds))

let digest_fuzz_pairs_agree () =
  for seed = 1 to 10 do
    let case = Fuzz_gen.generate ~seed () in
    checks
      (Printf.sprintf "seed %d: test/ref digests agree" seed)
      (Ir_digest.program case.Fuzz_gen.test)
      (Ir_digest.program case.Fuzz_gen.ref_)
  done

(* ---------------- merging ---------------- *)

let artifact_of ?config name =
  let prog, config, result =
    match config with
    | Some c -> profiled ~config:c name
    | None -> profiled name
  in
  let path = tmp ".jsonl" in
  ok
    (Store.write_profile ~created:1.0 ~producer:"t" ~path
       ~program_digest:(Ir_digest.program prog) ~config result);
  let a = ok (Store.read_profile path) in
  Sys.remove path;
  a

let merge_identity () =
  let a = artifact_of "ft" in
  let _config, m = ok (Store.merge_profiles [ (a, 1.0) ]) in
  checki "total accesses" a.Store.result.Profiler.total_accesses
    m.Profiler.total_accesses;
  checki "tracked allocs" a.Store.result.Profiler.tracked_allocs
    m.Profiler.tracked_allocs;
  checkb "raw graph unchanged" true
    (graphs_equal a.Store.result.Profiler.raw_graph m.Profiler.raw_graph);
  (* The filter re-runs over the merged raw graph; at weight 1 that is
     the filter of the original raw graph. *)
  checkb "refiltered like a single run" true
    (sorted_edges m.Profiler.graph
    = sorted_edges
        (Affinity_graph.filter_top a.Store.result.Profiler.raw_graph
           ~coverage:a.Store.config.Profiler.node_coverage))

let merge_weights_scale () =
  let a = artifact_of "ft" in
  let _config, doubled = ok (Store.merge_profiles [ (a, 1.0); (a, 1.0) ]) in
  checki "equal-weight self-merge doubles accesses"
    (2 * a.Store.result.Profiler.total_accesses)
    doubled.Profiler.total_accesses;
  let node = List.hd (Affinity_graph.nodes a.Store.result.Profiler.raw_graph) in
  checki "node accesses double"
    (2 * Affinity_graph.node_accesses a.Store.result.Profiler.raw_graph node)
    (Affinity_graph.node_accesses doubled.Profiler.raw_graph node);
  let _config, halved = ok (Store.merge_profiles [ (a, 0.5) ]) in
  checki "fractional weight rounds to nearest"
    (int_of_float
       (Float.round (0.5 *. float_of_int a.Store.result.Profiler.total_accesses)))
    halved.Profiler.total_accesses

let merge_across_seeds () =
  (* Same experiment observed under two input seeds: config digests agree
     (the seed is masked), so the runs merge. *)
  let a = artifact_of "ft" in
  let b =
    artifact_of ~config:{ Profiler.default_config with Profiler.seed = 5 } "ft"
  in
  checks "seed-masked config digests agree" a.Store.header.Store.config_digest
    b.Store.header.Store.config_digest;
  let _config, m = ok (Store.merge_profiles [ (a, 1.0); (b, 1.0) ]) in
  checki "totals add"
    (a.Store.result.Profiler.total_accesses
    + b.Store.result.Profiler.total_accesses)
    m.Profiler.total_accesses

let merge_rejects_foreign_program () =
  let a = artifact_of "ft" in
  let b = artifact_of "health" in
  (match
     err "cross-program merge" (Store.merge_profiles [ (a, 1.0); (b, 1.0) ])
   with
  | Store.Digest_mismatch { field = "program"; _ } -> ()
  | e -> Alcotest.fail ("wanted Digest_mismatch, got " ^ Store.error_to_string e))

let merge_rejects_bad_weights () =
  let a = artifact_of "ft" in
  checkb "empty input raises" true
    (match Store.merge_profiles [] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "non-positive weight raises" true
    (match Store.merge_profiles [ (a, 0.0) ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------------- incremental merging ---------------- *)

let merge_incremental_matches_batch () =
  let a = artifact_of "ft" in
  let b =
    artifact_of ~config:{ Profiler.default_config with Profiler.seed = 5 } "ft"
  in
  let pairs = [ (a, 1.0); (b, 2.5) ] in
  let bc, batch = ok (Store.merge_profiles pairs) in
  let st = Store.merge_create () in
  List.iter (fun p -> ok (Store.merge_add st p)) pairs;
  checki "merge_count follows the fold" 2 (Store.merge_count st);
  checkb "merge_total_weight sums the weights" true
    (Store.merge_total_weight st = 3.5);
  let ic, inc = ok (Store.merge_result st) in
  checks "fold and batch agree on the config digest"
    (Store.profile_config_digest bc)
    (Store.profile_config_digest ic);
  checkb "fold and batch agree on the filtered graph" true
    (graphs_equal batch.Profiler.graph inc.Profiler.graph);
  checkb "fold and batch agree on the raw graph" true
    (graphs_equal batch.Profiler.raw_graph inc.Profiler.raw_graph);
  checki "fold and batch agree on accesses" batch.Profiler.total_accesses
    inc.Profiler.total_accesses;
  checki "fold and batch agree on tracked allocs" batch.Profiler.tracked_allocs
    inc.Profiler.tracked_allocs;
  checki "fold and batch agree on contexts"
    (Context.count batch.Profiler.contexts)
    (Context.count inc.Profiler.contexts)

let merge_result_is_a_snapshot () =
  let a = artifact_of "ft" in
  let st = Store.merge_create () in
  ok (Store.merge_add st (a, 1.0));
  let _, r1 = ok (Store.merge_result st) in
  let edges_before = sorted_edges r1.Profiler.raw_graph in
  let contexts_before = Context.count r1.Profiler.contexts in
  ok (Store.merge_add st (a, 3.0));
  let _, r2 = ok (Store.merge_result st) in
  checkb "later merges don't mutate earlier snapshots" true
    (sorted_edges r1.Profiler.raw_graph = edges_before
    && Context.count r1.Profiler.contexts = contexts_before);
  checki "weights accumulate across results"
    (4 * r1.Profiler.total_accesses)
    r2.Profiler.total_accesses

let merge_incremental_rejects () =
  let a = artifact_of "ft" in
  let foreign = artifact_of "health" in
  let st = Store.merge_create () in
  checkb "empty state has no result" true
    (match Store.merge_result st with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "non-finite weight raises" true
    (match Store.merge_add st (a, Float.nan) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  ok (Store.merge_add st (a, 1.0));
  (match err "cross-program fold" (Store.merge_add st (foreign, 1.0)) with
  | Store.Digest_mismatch { field = "program"; _ } -> ()
  | e -> Alcotest.fail ("wanted Digest_mismatch, got " ^ Store.error_to_string e));
  checki "rejected add leaves the fold untouched" 1 (Store.merge_count st)

(* ---------------- v1 line-ending tolerance ---------------- *)

(* Hand-crafted byte-level variants of a recorded v1 artifact: CRLF line
   endings and a missing final newline must decode identically — the
   reader canonicalises lines before parsing and checksumming. *)

let crlf s = String.concat "\r\n" (String.split_on_char '\n' s)

let v1_tolerates_crlf () =
  let path = recorded () in
  let orig = ok (Store.read_profile path) in
  write_file path (crlf (read_file path));
  let a = ok (Store.read_profile path) in
  checkb "CRLF artifact decodes identically" true
    (graphs_equal orig.Store.result.Profiler.graph a.Store.result.Profiler.graph
    && orig.Store.result.Profiler.total_accesses
       = a.Store.result.Profiler.total_accesses);
  Sys.remove path

let v1_tolerates_missing_final_newline () =
  let path = recorded () in
  let data = read_file path in
  let orig = ok (Store.read_profile path) in
  let n = String.length data in
  checkb "fixture ends with a newline" true (data.[n - 1] = '\n');
  write_file path (String.sub data 0 (n - 1));
  (match Store.read_profile path with
  | Ok a ->
      checki "no-final-newline decodes identically"
        orig.Store.result.Profiler.total_accesses
        a.Store.result.Profiler.total_accesses
  | Error e ->
      Alcotest.fail ("no-final-newline rejected: " ^ Store.error_to_string e));
  (* CRLF and a chopped final newline at once: the last line ends in a
     bare '\r', which the canonicaliser must also strip. *)
  let c = crlf data in
  write_file path (String.sub c 0 (String.length c - 1));
  (match Store.read_profile path with
  | Ok a ->
      checki "CRLF+no-newline decodes identically"
        orig.Store.result.Profiler.total_accesses
        a.Store.result.Profiler.total_accesses
  | Error e ->
      Alcotest.fail ("CRLF+no-newline rejected: " ^ Store.error_to_string e));
  Sys.remove path

(* ---------------- v2 binary codec ---------------- *)

let recorded_v2 () =
  let prog, config, result = profiled "ft" in
  let path = tmp ".bin" in
  ok
    (Store.write_profile ~format:Store.V2 ~created:1.0 ~producer:"t" ~path
       ~program_digest:(Ir_digest.program prog) ~config result);
  path

let profile_round_trip_v2 () =
  let prog, config, result = profiled "ft" in
  let digest = Ir_digest.program prog in
  let path = tmp ".bin" in
  ok
    (Store.write_profile ~format:Store.V2 ~created:1.0 ~producer:"t" ~path
       ~program_digest:digest ~config result);
  let h = ok (Store.read_header path) in
  checki "header says v2" 2 h.Store.version;
  let a = ok (Store.read_profile ~expect_program:digest path) in
  checki "total accesses" result.Profiler.total_accesses
    a.Store.result.Profiler.total_accesses;
  checki "instructions" result.Profiler.instructions
    a.Store.result.Profiler.instructions;
  checki "context count"
    (Context.count result.Profiler.contexts)
    (Context.count a.Store.result.Profiler.contexts);
  for id = 0 to Context.count result.Profiler.contexts - 1 do
    checkb "context sites" true
      (Context.sites result.Profiler.contexts id
      = Context.sites a.Store.result.Profiler.contexts id)
  done;
  checkb "filtered graph round-trips" true
    (graphs_equal result.Profiler.graph a.Store.result.Profiler.graph);
  checkb "raw graph round-trips" true
    (graphs_equal result.Profiler.raw_graph a.Store.result.Profiler.raw_graph);
  let path2 = tmp ".bin" in
  ok
    (Store.write_profile ~format:Store.V2 ~created:1.0 ~producer:"t"
       ~path:path2 ~program_digest:digest ~config a.Store.result);
  checks "byte-stable re-encode" (read_file path) (read_file path2);
  (* The compaction claim: same payload, meaningfully fewer bytes. *)
  let v1path = tmp ".jsonl" in
  ok
    (Store.write_profile ~created:1.0 ~producer:"t" ~path:v1path
       ~program_digest:digest ~config result);
  checkb "v2 is smaller than v1" true
    ((Unix.stat path).Unix.st_size < (Unix.stat v1path).Unix.st_size);
  Sys.remove path;
  Sys.remove path2;
  Sys.remove v1path

(* Independent FNV-1a-64 (the constants re-stated here on purpose: a
   drift in the library's constants must fail this pin). *)
let fnv_prime = 0x100000001b3L
let fnv_offset = 0xcbf29ce484222325L

let fnv_sub h s pos len =
  let h = ref h in
  for i = pos to pos + len - 1 do
    h :=
      Int64.mul (Int64.logxor !h (Int64.of_int (Char.code s.[i]))) fnv_prime
  done;
  !h

let u32_at s pos =
  let g i = Char.code s.[pos + i] in
  g 0 lor (g 1 lsl 8) lor (g 2 lsl 16) lor (g 3 lsl 24)

let i64_at s pos =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[pos + i]))
  done;
  !v

let golden_v2_container () =
  let prog, config, result = profiled "ft" in
  let path = tmp ".bin" in
  ok
    (Store.write_profile ~format:Store.V2 ~created:1700000000.0
       ~producer:"golden" ~path
       ~program_digest:(Ir_digest.program prog) ~config result);
  let data = read_file path in
  Sys.remove path;
  checks "magic bytes" "HALOSTOR" (String.sub data 0 8);
  checki "container version byte" 2 (Char.code data.[8]);
  let hlen = u32_at data 9 in
  checks "v2 header bytes"
    ("{\"format\":\"halo/store\",\"version\":2,\"kind\":\"profile\",\
      \"program\":\"" ^ Ir_digest.program prog
   ^ "\",\"config\":\"a44f7ef8caf217822d7a520db0a30566\",\
      \"created\":1700000000.0,\"producer\":\"golden\",\
      \"meta\":{\"profiler_config\":{\"affinity_distance\":128,\
      \"max_tracked_size\":4096,\"node_coverage\":0.90000000000000002,\
      \"seed\":1,\"sample_period\":1}}}")
    (String.sub data 13 hlen);
  (* Walk the record frames, recomputing the checksum independently of
     the library, and pin the trailer against it. *)
  let pos = ref (13 + hlen) and h = ref fnv_offset and n = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let len = u32_at data !pos in
    if len = 0 then continue_ := false
    else begin
      h := fnv_sub !h data !pos (4 + len);
      pos := !pos + 4 + len;
      incr n
    end
  done;
  let p = ref (!pos + 4) in
  let zigzag = ref 0 and shift = ref 0 and fin = ref false in
  while not !fin do
    let b = Char.code data.[!p] in
    zigzag := !zigzag lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    incr p;
    if b land 0x80 = 0 then fin := true
  done;
  let count = (!zigzag lsr 1) lxor (- (!zigzag land 1)) in
  checki "trailer record count" !n count;
  checkb "trailer checksum matches an independent FNV-1a-64" true
    (Int64.equal (i64_at data !p) !h);
  checki "file ends right after the checksum" (String.length data) (!p + 8)

let reject_v2_truncated () =
  let path = recorded_v2 () in
  let data = read_file path in
  (* Chop into the trailer checksum... *)
  write_file path (String.sub data 0 (String.length data - 6));
  (match err "v2 trailer chopped" (Store.read_profile path) with
  | Store.Truncated -> ()
  | e -> Alcotest.fail ("wanted Truncated, got " ^ Store.error_to_string e));
  (* ...and into a record frame. *)
  write_file path (String.sub data 0 (String.length data / 2));
  (match err "v2 frame chopped" (Store.read_profile path) with
  | Store.Truncated -> ()
  | e -> Alcotest.fail ("wanted Truncated, got " ^ Store.error_to_string e));
  Sys.remove path

let reject_v2_bad_checksum () =
  let path = recorded_v2 () in
  let data = read_file path in
  let hlen = u32_at data 9 in
  (* Flip the first record's tag byte: frame lengths stay intact, so the
     walk succeeds and only the checksum can catch the corruption. *)
  let b = Bytes.of_string data in
  let tag_pos = 13 + hlen + 4 in
  Bytes.set b tag_pos (Char.chr (Char.code (Bytes.get b tag_pos) lxor 0x40));
  write_file path (Bytes.to_string b);
  (match err "v2 payload bit-flip" (Store.read_profile path) with
  | Store.Bad_checksum _ -> ()
  | e -> Alcotest.fail ("wanted Bad_checksum, got " ^ Store.error_to_string e));
  Sys.remove path

let reject_v2_version_skew () =
  let path = recorded_v2 () in
  let data = read_file path in
  let b = Bytes.of_string data in
  Bytes.set b 8 (Char.chr 9);
  write_file path (Bytes.to_string b);
  (match err "v2 container version 9" (Store.read_header path) with
  | Store.Version_skew { found = 9; supported = 2 } -> ()
  | e -> Alcotest.fail ("wanted Version_skew, got " ^ Store.error_to_string e));
  (match err "v2 payload under version 9" (Store.read_profile path) with
  | Store.Version_skew { found = 9; supported = 2 } -> ()
  | e -> Alcotest.fail ("wanted Version_skew, got " ^ Store.error_to_string e));
  Sys.remove path

(* ---------------- migration ---------------- *)

let migrate_profile_bit_equivalence () =
  let prog, config, result = profiled "ft" in
  let digest = Ir_digest.program prog in
  let v1 = tmp ".jsonl" and v2 = tmp ".bin" and v1b = tmp ".jsonl" in
  let v2direct = tmp ".bin" in
  ok
    (Store.write_profile ~created:5.0 ~producer:"mig" ~path:v1
       ~program_digest:digest ~config result);
  let h2 = ok (Store.migrate ~format:Store.V2 ~src:v1 v2) in
  checki "migrated header says v2" 2 h2.Store.version;
  (* Migration preserves creation metadata, so a direct v2 encode of the
     same artifact is byte-identical to the migrated one. *)
  ok
    (Store.write_profile ~format:Store.V2 ~created:5.0 ~producer:"mig"
       ~path:v2direct ~program_digest:digest ~config result);
  checks "migrated v2 equals direct v2 encode" (read_file v2direct)
    (read_file v2);
  let h1 = ok (Store.migrate ~format:Store.V1 ~src:v2 v1b) in
  checki "migrated-back header says v1" 1 h1.Store.version;
  checks "v1 -> v2 -> v1 reproduces the bytes" (read_file v1) (read_file v1b);
  let a1 = ok (Store.read_profile v1) and a2 = ok (Store.read_profile v2) in
  let _, m1 = ok (Store.merge_profiles [ (a1, 1.0) ]) in
  let _, m2 = ok (Store.merge_profiles [ (a2, 1.0) ]) in
  checkb "decode+merge agrees across codecs" true
    (graphs_equal m1.Profiler.graph m2.Profiler.graph
    && graphs_equal m1.Profiler.raw_graph m2.Profiler.raw_graph
    && m1.Profiler.total_accesses = m2.Profiler.total_accesses);
  List.iter Sys.remove [ v1; v2; v1b; v2direct ]

let migrate_plan_bit_equivalence () =
  let prog = (w "ft").Workload.make Workload.Test in
  let plan = Pipeline.plan prog in
  let digest = Ir_digest.program prog in
  let v1 = tmp ".jsonl" and v2 = tmp ".bin" and v1b = tmp ".jsonl" in
  ok
    (Store.write_plan ~created:5.0 ~producer:"mig" ~path:v1
       ~program_digest:digest plan);
  ignore (ok (Store.migrate ~format:Store.V2 ~src:v1 v2) : Store.header);
  let _, p2 = ok (Store.read_plan ~expect_program:digest v2) in
  checkb "plan payload survives v2" true
    (p2.Pipeline.grouping = plan.Pipeline.grouping
    && p2.Pipeline.selectors = plan.Pipeline.selectors
    && p2.Pipeline.rewrite = plan.Pipeline.rewrite
    && p2.Pipeline.config = plan.Pipeline.config);
  ignore (ok (Store.migrate ~format:Store.V1 ~src:v2 v1b) : Store.header);
  checks "plan v1 -> v2 -> v1 reproduces the bytes" (read_file v1)
    (read_file v1b);
  List.iter Sys.remove [ v1; v2; v1b ]

(* ---------------- sharded merging ---------------- *)

let artifact_seeded name seed =
  artifact_of
    ~config:{ Profiler.default_config with Profiler.seed = seed }
    name

let merged_bytes digest merged =
  let path = tmp ".jsonl" in
  let config, result = merged in
  ok
    (Store.write_profile ~created:9.0 ~producer:"t" ~path
       ~program_digest:digest ~config result);
  let bytes = read_file path in
  Sys.remove path;
  bytes

let sharded_merge_byte_identity () =
  let inputs =
    List.init 12 (fun k ->
        let a = artifact_seeded "ft" (k + 1) in
        (a, if k mod 3 = 0 then 2.5 else 1.0))
  in
  let digest = (fst (List.hd inputs)).Store.header.Store.program_digest in
  let seq = merged_bytes digest (ok (Store.merge_profiles inputs)) in
  List.iter
    (fun jobs ->
      let sharded =
        merged_bytes digest (ok (Store.merge_profiles_sharded ~jobs inputs))
      in
      checks
        (Printf.sprintf "sharded merge at %d jobs is byte-identical" jobs)
        seq sharded)
    [ 1; 2; 3; 4; 5 ]

let sharded_merge_rejects_like_sequential () =
  let a = artifact_seeded "ft" 1 and foreign = artifact_seeded "health" 1 in
  (match
     err "cross-program sharded merge"
       (Store.merge_profiles_sharded ~jobs:2 [ (a, 1.0); (foreign, 1.0) ])
   with
  | Store.Digest_mismatch { field = "program"; _ } -> ()
  | e -> Alcotest.fail ("wanted Digest_mismatch, got " ^ Store.error_to_string e));
  checkb "empty input raises" true
    (match Store.merge_profiles_sharded [] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "bad weight raises" true
    (match Store.merge_profiles_sharded ~jobs:2 [ (a, 0.0) ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let merge_by_program_partitions () =
  let ft1 = artifact_seeded "ft" 1
  and ft2 = artifact_seeded "ft" 2
  and he1 = artifact_seeded "health" 1 in
  let ftd = ft1.Store.header.Store.program_digest
  and hed = he1.Store.header.Store.program_digest in
  let results =
    Store.merge_by_program ~jobs:3
      [ (ft1, 1.0); (he1, 1.0); (ft2, 1.0) ]
  in
  (match results with
  | [ (d1, Ok m1); (d2, Ok m2) ] ->
      checks "first-appearance order: ft first" ftd d1;
      checks "then health" hed d2;
      let ft_seq = ok (Store.merge_profiles [ (ft1, 1.0); (ft2, 1.0) ]) in
      let he_seq = ok (Store.merge_profiles [ (he1, 1.0) ]) in
      checks "ft partition merges like the sequential fold"
        (merged_bytes ftd ft_seq) (merged_bytes ftd m1);
      checks "health partition merges like the sequential fold"
        (merged_bytes hed he_seq) (merged_bytes hed m2)
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected 2 merged programs, got %d" (List.length l)));
  checki "empty input yields no programs" 0
    (List.length (Store.merge_by_program []))

let merge_adopt_resumes () =
  let a = artifact_seeded "ft" 1 and b = artifact_seeded "ft" 2 in
  (* Fold a+b, persist, re-adopt, fold nothing more: the adopted state
     must report the original mass and count and merge to the same
     bytes. *)
  let st = Store.merge_create () in
  ok (Store.merge_add st (a, 1.5));
  ok (Store.merge_add st (b, 1.0));
  let digest = a.Store.header.Store.program_digest in
  let config, result = ok (Store.merge_result st) in
  let path = tmp ".bin" in
  ok
    (Store.write_profile ~format:Store.V2 ~created:0.0 ~producer:"t" ~path
       ~program_digest:digest ~config result);
  let saved = ok (Store.read_profile path) in
  Sys.remove path;
  let st2 = Store.merge_create () in
  ok
    (Store.merge_adopt st2 ~mass:(Store.merge_total_weight st)
       ~count:(Store.merge_count st) saved);
  checki "adopted count" (Store.merge_count st) (Store.merge_count st2);
  checkb "adopted mass" true
    (Float.equal (Store.merge_total_weight st) (Store.merge_total_weight st2));
  checks "adopted state merges to the same bytes"
    (merged_bytes digest (config, result))
    (merged_bytes digest (ok (Store.merge_result st2)))

(* ---------------- plan cache ---------------- *)

let run_json m = Json.to_string (Runner.to_json m)

let profile_runs obs =
  Metrics.counter_value (Metrics.counter (Obs.metrics obs) "profile.runs")

(* Cache entries may be in either codec (v2 [.plan.bin] by default). *)
let is_plan_entry f =
  Filename.check_suffix f ".plan.bin" || Filename.check_suffix f ".plan.jsonl"

let cache_record_apply_equivalence () =
  let hw = w "ft" in
  let cache = Plan_cache.create (tmp_dir ()) in
  let src = Plan_cache.source cache in
  let cold = Runner.run ~plan_source:src hw Runner.Halo in
  let warm = Runner.run ~plan_source:src hw Runner.Halo in
  checks "cached plan reproduces the measurement bit for bit" (run_json cold)
    (run_json warm);
  let s = Plan_cache.stats cache in
  checki "one miss" 1 s.Plan_cache.misses;
  checki "one store" 1 s.Plan_cache.stores;
  checki "one hit" 1 s.Plan_cache.hits;
  (* The artifact on disk, decoded and pinned as a constant source, is
     the apply phase — and must measure identically too. *)
  let entry =
    match
      Sys.readdir (Plan_cache.dir cache)
      |> Array.to_list |> List.filter is_plan_entry
    with
    | [ f ] -> Filename.concat (Plan_cache.dir cache) f
    | l -> Alcotest.fail (Printf.sprintf "expected 1 cache entry, found %d" (List.length l))
  in
  let _header, plan = ok (Store.read_plan entry) in
  let applied =
    Runner.run ~plan_source:(Pipeline.constant_source plan) hw Runner.Halo
  in
  checks "applied artifact measures identically" (run_json cold)
    (run_json applied)

let cache_warmed_run_never_profiles () =
  let hw = w "ft" in
  let cache = Plan_cache.create (tmp_dir ()) in
  let src = Plan_cache.source cache in
  let obs_cold = Obs.create () in
  ignore (Runner.run ~obs:obs_cold ~plan_source:src hw Runner.Halo
           : Runner.measurement);
  checki "cold run profiles once" 1 (profile_runs obs_cold);
  let obs_warm = Obs.create () in
  ignore (Runner.run ~obs:obs_warm ~plan_source:src hw Runner.Halo
           : Runner.measurement);
  checki "warm run never profiles" 0 (profile_runs obs_warm)

let cache_corrupt_entry_is_a_miss () =
  let hw = w "ft" in
  let cache = Plan_cache.create (tmp_dir ()) in
  let src = Plan_cache.source cache in
  let cold = Runner.run ~plan_source:src hw Runner.Halo in
  let entry =
    Filename.concat (Plan_cache.dir cache)
      (List.find is_plan_entry
         (Array.to_list (Sys.readdir (Plan_cache.dir cache))))
  in
  let bytes = read_file entry in
  write_file entry (String.sub bytes 0 (String.length bytes / 2));
  let recovered = Runner.run ~plan_source:src hw Runner.Halo in
  checks "recomputed past the torn entry" (run_json cold) (run_json recovered);
  let s = Plan_cache.stats cache in
  checki "torn entry read as a miss" 2 s.Plan_cache.misses;
  checki "and was re-stored" 2 s.Plan_cache.stores;
  checkb "entry readable again" true
    (match Store.read_plan entry with Ok _ -> true | Error _ -> false)

let cache_eviction_bounds_entries () =
  let hw = w "ft" in
  let cache = Plan_cache.create ~max_entries:1 (tmp_dir ()) in
  let src = Plan_cache.source cache in
  ignore (Runner.run ~plan_source:src hw Runner.Halo : Runner.measurement);
  let cfg2 =
    { Pipeline.default_config with Pipeline.min_edge_frac = 2e-4 }
  in
  ignore
    (Runner.run ~plan_source:src ~pipeline_config:cfg2 hw Runner.Halo
      : Runner.measurement);
  let entries =
    Sys.readdir (Plan_cache.dir cache)
    |> Array.to_list |> List.filter is_plan_entry
  in
  checki "bounded to max_entries" 1 (List.length entries);
  checkb "eviction counted" true ((Plan_cache.stats cache).Plan_cache.evictions >= 1)

let cache_concurrent_stats_obs_agree () =
  (* Four domains hammer one bounded cache with distinct keys: every
     lookup/store goes through a worker-private obs context, and after
     the join the merged [store.cache.*] counters must agree exactly
     with the cache's own thread-safe stats ledger. *)
  let program = (w "ft").Workload.make Workload.Test in
  let cache = Plan_cache.create ~max_entries:2 (tmp_dir ()) in
  let src = Plan_cache.source cache in
  let result =
    Profiler.profile ~config:Pipeline.default_config.Pipeline.profiler program
  in
  let configs =
    List.init 6 (fun k ->
        {
          Pipeline.default_config with
          Pipeline.min_edge_frac = 1e-4 *. float_of_int (k + 1);
        })
  in
  let plans = List.map (fun c -> (c, Pipeline.derive ~config:c result)) configs in
  let obs = Obs.create () in
  ignore
    (Par.map_obs ~obs ~jobs:4
       (fun wobs (c, plan) ->
         ignore (src.Pipeline.lookup wobs program c : Pipeline.plan option);
         src.Pipeline.store wobs program c plan;
         ignore (src.Pipeline.lookup wobs program c : Pipeline.plan option))
       plans
      : unit list);
  let s = Plan_cache.stats cache in
  let counter name =
    Metrics.counter_value (Metrics.counter (Obs.metrics obs) name)
  in
  checkb "evictions happened" true (s.Plan_cache.evictions >= 1);
  checki "stats and obs agree on evictions" s.Plan_cache.evictions
    (counter "store.cache.evictions");
  checki "stats and obs agree on hits" s.Plan_cache.hits
    (counter "store.cache.hits");
  checki "stats and obs agree on misses" s.Plan_cache.misses
    (counter "store.cache.misses");
  checki "stats and obs agree on stores" s.Plan_cache.stores
    (counter "store.cache.stores");
  checki "every key was looked up twice and stored once"
    (2 * List.length configs)
    (s.Plan_cache.hits + s.Plan_cache.misses);
  checki "stores" (List.length configs) s.Plan_cache.stores

let cache_stats_persist_across_processes () =
  let dir = tmp_dir () in
  let program = (w "ft").Workload.make Workload.Test in
  let c = Pipeline.default_config in
  let cache = Plan_cache.create dir in
  let src = Plan_cache.source cache in
  ignore (src.Pipeline.lookup None program c : Pipeline.plan option);
  let plan = Pipeline.plan ~config:c program in
  src.Pipeline.store None program c plan;
  ignore (src.Pipeline.lookup None program c : Pipeline.plan option);
  Plan_cache.save_stats cache;
  (match Plan_cache.load_stats dir with
  | None -> Alcotest.fail "stats.json not written"
  | Some s ->
      checki "persisted hits" 1 s.Plan_cache.hits;
      checki "persisted misses" 1 s.Plan_cache.misses;
      checki "persisted stores" 1 s.Plan_cache.stores);
  (* A fresh handle (a new process, as far as the cache can tell) starts
     its own counters at zero but reads the saved ledger as a baseline. *)
  let reopened = Plan_cache.create dir in
  checki "process stats start at zero" 0
    (Plan_cache.stats reopened).Plan_cache.hits;
  checki "lifetime stats carry the saved ledger" 1
    (Plan_cache.lifetime_stats reopened).Plan_cache.hits;
  checkb "stats.json is not a cache entry" true
    (not (List.mem "stats.json" (Plan_cache.entry_names reopened)));
  checki "one plan entry listed" 1
    (List.length (Plan_cache.entry_names reopened))

let cache_eviction_name_tie_break () =
  (* Three entries forced onto one mtime second, then a fourth store
     with a cap of two: of the tied entries, exactly the
     lexicographically-last name survives — eviction order is
     deterministic, not readdir luck. *)
  let program = (w "ft").Workload.make Workload.Test in
  let dir = tmp_dir () in
  let unbounded = Plan_cache.create dir in
  let src = Plan_cache.source unbounded in
  let result =
    Profiler.profile ~config:Pipeline.default_config.Pipeline.profiler program
  in
  let configs =
    List.init 3 (fun k ->
        {
          Pipeline.default_config with
          Pipeline.min_edge_frac = 1e-4 *. float_of_int (k + 1);
        })
  in
  List.iter
    (fun c -> src.Pipeline.store None program c (Pipeline.derive ~config:c result))
    configs;
  let names = List.sort compare (Plan_cache.entry_names unbounded) in
  checki "three entries stored" 3 (List.length names);
  List.iter
    (fun n -> Unix.utimes (Filename.concat dir n) 1000.0 1000.0)
    names;
  let bounded = Plan_cache.create ~max_entries:2 dir in
  let bsrc = Plan_cache.source bounded in
  let c4 = { Pipeline.default_config with Pipeline.min_edge_frac = 9e-4 } in
  bsrc.Pipeline.store None program c4 (Pipeline.derive ~config:c4 result);
  let survivors = Plan_cache.entry_names bounded in
  checki "bounded to max_entries" 2 (List.length survivors);
  let new_entry =
    Ir_digest.program program ^ "-" ^ Store.plan_config_digest c4 ^ ".plan.bin"
  in
  checkb "fresh store survives" true (List.mem new_entry survivors);
  checkb "largest name among the mtime ties survives" true
    (List.mem (List.nth names 2) survivors);
  checki "evictions counted" 2 (Plan_cache.stats bounded).Plan_cache.evictions

let cache_codec_interop () =
  (* A v1-written directory keeps serving hits to a v2-configured cache,
     and a re-store migrates the entry in place (one entry, new suffix). *)
  let program = (w "ft").Workload.make Workload.Test in
  let dir = tmp_dir () in
  let c = Pipeline.default_config in
  let plan = Pipeline.plan ~config:c program in
  let v1cache = Plan_cache.create ~format:Store.V1 dir in
  let v1src = Plan_cache.source v1cache in
  v1src.Pipeline.store None program c plan;
  checkb "v1 entry written" true
    (List.exists
       (fun n -> Filename.check_suffix n ".plan.jsonl")
       (Plan_cache.entry_names v1cache));
  let v2cache = Plan_cache.create dir in
  let v2src = Plan_cache.source v2cache in
  checkb "v2-configured cache hits the v1 entry" true
    (Option.is_some (v2src.Pipeline.lookup None program c));
  checki "cross-codec lookup is a hit" 1
    (Plan_cache.stats v2cache).Plan_cache.hits;
  v2src.Pipeline.store None program c plan;
  (match Plan_cache.entry_names v2cache with
  | [ n ] ->
      checkb "single entry after re-store, in the v2 codec" true
        (Filename.check_suffix n ".plan.bin")
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected 1 entry after re-store, found %d"
           (List.length l)));
  checkb "migrated entry still hits" true
    (Option.is_some (v2src.Pipeline.lookup None program c))

let suite_warmed_equivalence () =
  (* The acceptance bar: a warmed cache runs the whole figure suite with
     zero profiler invocations and unchanged measurements. *)
  let workloads = [ w "ft" ] in
  let plain = Figures.run_suite ~workloads ~jobs:1 () in
  let cache = Plan_cache.create (tmp_dir ()) in
  let plan_source = Plan_cache.source cache in
  ignore (Figures.run_suite ~workloads ~jobs:1 ~plan_source () : Figures.suite);
  let obs = Obs.create () in
  let warmed = Figures.run_suite ~workloads ~jobs:1 ~obs ~plan_source () in
  checki "warmed suite never profiles" 0 (profile_runs obs);
  checkb "warmed suite had no misses" true
    (let s = Plan_cache.stats cache in
     s.Plan_cache.hits > 0
     && s.Plan_cache.misses = (* cold pass only *) s.Plan_cache.stores);
  List.iter
    (fun kind ->
      Alcotest.check
        (Alcotest.list Alcotest.string)
        (Runner.kind_name kind ^ " cell identical with warmed cache")
        (List.map run_json (Figures.runs_of plain "ft" kind))
        (List.map run_json (Figures.runs_of warmed "ft" kind)))
    Figures.suite_kinds

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  [
    tc "profile round-trips" profile_round_trip;
    tc "golden v1 header" golden_header;
    tc "golden digests" golden_digests;
    tc "rejects truncated artifact" reject_truncated;
    tc "rejects checksum mismatch" reject_bad_checksum;
    tc "rejects version skew" reject_version_skew;
    tc "rejects wrong kind" reject_wrong_kind;
    tc "rejects digest mismatch" reject_digest_mismatch;
    tc "rejects payload count mismatch" reject_malformed_count;
    tc "missing file is an io error" reject_io;
    tc "v1 tolerates CRLF line endings" v1_tolerates_crlf;
    tc "v1 tolerates a missing final newline" v1_tolerates_missing_final_newline;
    tc "v2 profile round-trips" profile_round_trip_v2;
    tc "golden v2 container" golden_v2_container;
    tc "v2 rejects truncation" reject_v2_truncated;
    tc "v2 rejects checksum mismatch" reject_v2_bad_checksum;
    tc "v2 rejects version skew" reject_v2_version_skew;
    tc "migrate: profile bit-equivalence" migrate_profile_bit_equivalence;
    tc "migrate: plan bit-equivalence" migrate_plan_bit_equivalence;
    slow "sharded merge is byte-identical at any jobs" sharded_merge_byte_identity;
    tc "sharded merge rejects like sequential" sharded_merge_rejects_like_sequential;
    tc "merge_by_program partitions by digest" merge_by_program_partitions;
    tc "merge_adopt resumes a persisted aggregate" merge_adopt_resumes;
    tc "digest ignores input scale" digest_scale_insensitive;
    tc "digest distinguishes workloads" digest_distinguishes_workloads;
    tc "digest agrees on fuzz pairs" digest_fuzz_pairs_agree;
    tc "merge: weight-1 identity" merge_identity;
    tc "merge: weights scale counts" merge_weights_scale;
    tc "merge: seed-independent digest" merge_across_seeds;
    tc "merge: rejects foreign program" merge_rejects_foreign_program;
    tc "merge: rejects bad weights" merge_rejects_bad_weights;
    tc "merge: incremental fold matches batch" merge_incremental_matches_batch;
    tc "merge: result is a snapshot" merge_result_is_a_snapshot;
    tc "merge: incremental fold rejects" merge_incremental_rejects;
    slow "cache: record/apply equivalence" cache_record_apply_equivalence;
    slow "cache: warmed run never profiles" cache_warmed_run_never_profiles;
    slow "cache: corrupt entry is a miss" cache_corrupt_entry_is_a_miss;
    slow "cache: eviction bounds entries" cache_eviction_bounds_entries;
    slow "cache: concurrent stats agree with obs" cache_concurrent_stats_obs_agree;
    slow "cache: stats persist across processes" cache_stats_persist_across_processes;
    slow "cache: eviction ties break on entry name" cache_eviction_name_tie_break;
    slow "cache: v1/v2 entries interoperate" cache_codec_interop;
    slow "suite: warmed-cache equivalence" suite_warmed_equivalence;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ plan_round_trip_prop; plan_round_trip_v2_prop ]
