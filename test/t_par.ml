(* Tests for halo_par: pool semantics, deterministic result ordering,
   exception propagation, and merging of per-worker metric registries. *)

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checkf msg = check (Alcotest.float 1e-9) msg
let checkil msg = check (Alcotest.list Alcotest.int) msg

(* ---------------- Par.map ---------------- *)

let map_ordering () =
  let xs = List.init 100 Fun.id in
  checkil "results in input order"
    (List.map (fun x -> x * x) xs)
    (Par.map ~jobs:4 (fun x -> x * x) xs)

let map_jobs_independent () =
  let xs = List.init 37 (fun k -> k - 5) in
  let f x = (x * 1234567) lxor (x lsl 3) in
  checkil "jobs:1 = jobs:8" (Par.map ~jobs:1 f xs) (Par.map ~jobs:8 f xs)

let map_edge_shapes () =
  checkil "empty input" [] (Par.map ~jobs:4 Fun.id []);
  checkil "singleton input" [ 42 ] (Par.map ~jobs:4 Fun.id [ 42 ]);
  (* More workers than tasks: the pool is capped at the task count. *)
  checkil "jobs > tasks" [ 2; 4 ] (Par.map ~jobs:16 (fun x -> 2 * x) [ 1; 2 ])

exception Boom of int

let map_exception_propagation () =
  let raised =
    try
      ignore
        (Par.map ~jobs:3
           (fun x -> if x = 5 then raise (Boom x) else x)
           (List.init 20 Fun.id)
          : int list);
      None
    with Boom n -> Some n
  in
  check (Alcotest.option Alcotest.int) "task exception re-raised at await"
    (Some 5) raised

let map_first_failure_wins () =
  (* 3, 7, 11, 15 all raise; awaiting in submission order means the
     earliest submitted failure is the one the caller sees. *)
  let raised =
    try
      ignore
        (Par.map ~jobs:4
           (fun x -> if x mod 4 = 3 then raise (Boom x) else x)
           (List.init 16 Fun.id)
          : int list);
      None
    with Boom n -> Some n
  in
  check (Alcotest.option Alcotest.int) "first failure in input order"
    (Some 3) raised

let map_exception_sequential () =
  let raised =
    try
      ignore (Par.map ~jobs:1 (fun x -> raise (Boom x)) [ 9 ] : int list);
      None
    with Boom n -> Some n
  in
  check (Alcotest.option Alcotest.int) "inline path re-raises too" (Some 9)
    raised

(* ---------------- pools and futures ---------------- *)

let pool_submit_await () =
  let p = Par.create ~jobs:3 () in
  checki "worker count" 3 (Par.jobs p);
  let futs = List.init 10 (fun k -> Par.submit p (fun _ -> 2 * k)) in
  let vals = List.map Par.await futs in
  Par.shutdown p;
  checkil "futures resolve in order" (List.init 10 (fun k -> 2 * k)) vals

let pool_shutdown_idempotent_and_closed () =
  let p = Par.create ~jobs:2 () in
  let fut = Par.submit p (fun _ -> 1) in
  checki "value" 1 (Par.await fut);
  Par.shutdown p;
  Par.shutdown p;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Par.submit: pool is shut down") (fun () ->
      ignore (Par.submit p (fun _ -> 0) : int Par.future))

(* ---------------- per-worker observability ---------------- *)

let map_obs_merges_worker_registries () =
  let obs = Obs.create () in
  let xs = List.init 25 Fun.id in
  let ys =
    Par.map_obs ~obs ~name:"t" ~jobs:4
      (fun wobs x ->
        Obs.count wobs "t.work" 1;
        Obs.observe wobs "t.size" (float_of_int x);
        x)
      xs
  in
  checkil "payload unaffected" xs ys;
  let snap = Metrics.snapshot (Obs.metrics obs) in
  (match List.assoc "t.work" snap with
  | Metrics.Counter n -> checki "worker counters merged" 25 n
  | _ -> Alcotest.fail "t.work should be a counter");
  (match List.assoc "t.size" snap with
  | Metrics.Histogram { count; max; _ } ->
      checki "worker histograms merged" 25 count;
      checkf "histogram max survives merge" 24.0 max
  | _ -> Alcotest.fail "t.size should be a histogram");
  (match List.assoc "t.tasks" snap with
  | Metrics.Counter n -> checki "par.tasks accounting" 25 n
  | _ -> Alcotest.fail "t.tasks should be a counter");
  match List.assoc "t.workers" snap with
  | Metrics.Gauge { last; _ } -> checkf "par.workers gauge" 4.0 last
  | _ -> Alcotest.fail "t.workers should be a gauge"

let map_obs_tracks_and_latency () =
  (* Every task leaves a queue-wait and a wall-time sample in its worker's
     registry, and worker-side spans are grafted onto the parent context
     on per-domain tracks. *)
  let obs = Obs.create () in
  let xs = List.init 12 Fun.id in
  ignore
    (Par.map_obs ~obs ~name:"t" ~jobs:3
       (fun wobs x -> Obs.span wobs "cell" (fun () -> x * x))
       xs
      : int list);
  let snap = Metrics.snapshot (Obs.metrics obs) in
  (match List.assoc "t.queue_wait_s" snap with
  | Metrics.Histogram { count; min; _ } ->
      checki "one queue-wait sample per task" 12 count;
      checkb "waits are non-negative" true (min >= 0.0)
  | _ -> Alcotest.fail "t.queue_wait_s should be a histogram");
  (match List.assoc "t.task_s" snap with
  | Metrics.Histogram { count; _ } ->
      checki "one wall-time sample per task" 12 count
  | _ -> Alcotest.fail "t.task_s should be a histogram");
  let cells =
    List.filter (fun (sp : Obs.span) -> sp.Obs.name = "cell") (Obs.spans obs)
  in
  checki "worker spans adopted" 12 (List.length cells);
  checkb "adopted spans sit on per-domain tracks" true
    (List.for_all
       (fun (sp : Obs.span) -> sp.Obs.track >= 1 && sp.Obs.track <= 3)
       cells);
  checkb "all closed" true
    (List.for_all (fun (sp : Obs.span) -> sp.Obs.closed) (Obs.spans obs))

let map_obs_jobs_invariant () =
  (* The acceptance bar for mergeable sketches: a deterministic workload
     produces bit-identical merged histogram/counter summaries at any
     worker count (integer-valued observations keep the float sums
     exact). Wall-clock metrics (queue waits, task times, alloc rate) are
     excluded — those legitimately vary. *)
  let run jobs =
    let obs = Obs.create () in
    ignore
      (Par.map_obs ~obs ~name:"t" ~jobs
         (fun wobs x ->
           Obs.count wobs "t.work" 1;
           Obs.observe wobs "t.size" (float_of_int (x mod 17));
           x)
         (List.init 40 Fun.id)
        : int list);
    let snap = Metrics.snapshot (Obs.metrics obs) in
    ( Json.to_string ~pretty:false
        (Metrics.value_to_json (List.assoc "t.size" snap)),
      Json.to_string ~pretty:false
        (Metrics.value_to_json (List.assoc "t.work" snap)) )
  in
  let s1, w1 = run 1 in
  let s4, w4 = run 4 in
  check Alcotest.string "histogram summary is jobs-invariant" s1 s4;
  check Alcotest.string "counter summary is jobs-invariant" w1 w4

let map_obs_without_parent_is_silent () =
  (* No parent context: workers get no private context either, and the
     disabled path is exactly the plain map. *)
  checkil "no obs" [ 1; 2; 3 ]
    (Par.map_obs ~jobs:2
       (fun wobs x ->
         checkb "worker obs absent" false (Obs.enabled wobs);
         x)
       [ 1; 2; 3 ])

(* ---------------- Metrics.merge ---------------- *)

let merge_counters () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr ~by:5 (Metrics.counter a "c");
  Metrics.incr ~by:37 (Metrics.counter b "c");
  Metrics.incr ~by:2 (Metrics.counter b "only_src");
  Metrics.merge ~into:a b;
  checki "counters sum" 42 (Metrics.counter_value (Metrics.counter a "c"));
  checki "missing counters created" 2
    (Metrics.counter_value (Metrics.counter a "only_src"))

let merge_gauges () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.set (Metrics.gauge a "g") 7.0;
  Metrics.set (Metrics.gauge b "g") 3.0;
  Metrics.set (Metrics.gauge b "g") 5.0;
  Metrics.merge ~into:a b;
  (match List.assoc "g" (Metrics.snapshot a) with
  | Metrics.Gauge { last; max; samples } ->
      checkf "last comes from merged source" 5.0 last;
      checkf "max of maxes" 7.0 max;
      checki "samples sum" 3 samples
  | _ -> Alcotest.fail "expected gauge");
  (* An empty source gauge must not clobber the destination. *)
  let c = Metrics.create () in
  ignore (Metrics.gauge c "g" : Metrics.gauge);
  Metrics.merge ~into:a c;
  match List.assoc "g" (Metrics.snapshot a) with
  | Metrics.Gauge { last; max; samples } ->
      checkf "last preserved" 5.0 last;
      checkf "max preserved" 7.0 max;
      checki "samples preserved" 3 samples
  | _ -> Alcotest.fail "expected gauge"

let merge_histograms () =
  (* Sketch merging is per-bucket integer addition: the merged sketch
     answers quantiles exactly as if one sketch had seen both streams. *)
  let a = Metrics.create () and b = Metrics.create () in
  let ha = Metrics.histogram a "h" in
  let hb = Metrics.histogram b "h" in
  List.iter (Metrics.observe ha) [ 0.5; 3.0 ];
  List.iter (Metrics.observe hb) [ 0.5; 9.0; 9.0 ];
  Metrics.merge ~into:a b;
  match List.assoc "h" (Metrics.snapshot a) with
  | Metrics.Histogram { count; sum; min; max; _ } as v ->
      checki "counts sum" 5 count;
      checkf "sums add" 22.0 sum;
      checkf "min of mins" 0.5 min;
      checkf "max of maxes" 9.0 max;
      let p100 = Option.get (Metrics.value_quantile v 1.0) in
      checkb "top quantile within alpha of max" true
        (Float.abs (p100 -. 9.0) /. 9.0 <= Metrics.default_alpha)
  | _ -> Alcotest.fail "expected histogram"

let merge_kind_mismatch () =
  let a = Metrics.create () and b = Metrics.create () in
  ignore (Metrics.counter a "m" : Metrics.counter);
  Metrics.set (Metrics.gauge b "m") 1.0;
  let raised =
    try
      Metrics.merge ~into:a b;
      false
    with Invalid_argument _ -> true
  in
  checkb "kind mismatch rejected" true raised

let merge_alpha_mismatch () =
  let a = Metrics.create () and b = Metrics.create () in
  ignore (Metrics.histogram ~alpha:0.01 a "h" : Metrics.histogram);
  ignore (Metrics.histogram ~alpha:0.02 b "h" : Metrics.histogram);
  Alcotest.check_raises "sketch accuracy must match"
    (Invalid_argument "Metrics.merge: \"h\" sketch accuracy differs") (fun () ->
      Metrics.merge ~into:a b)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "map: deterministic ordering" map_ordering;
    tc "map: jobs-independent results" map_jobs_independent;
    tc "map: empty/singleton/over-provisioned" map_edge_shapes;
    tc "map: exception propagation" map_exception_propagation;
    tc "map: first failure wins" map_first_failure_wins;
    tc "map: inline path re-raises" map_exception_sequential;
    tc "pool: submit/await ordering" pool_submit_await;
    tc "pool: shutdown idempotent, then closed" pool_shutdown_idempotent_and_closed;
    tc "map_obs: worker registries merged" map_obs_merges_worker_registries;
    tc "map_obs: task latency + per-domain tracks" map_obs_tracks_and_latency;
    tc "map_obs: merged summaries jobs-invariant" map_obs_jobs_invariant;
    tc "map_obs: disabled without parent" map_obs_without_parent_is_silent;
    tc "metrics.merge: counters" merge_counters;
    tc "metrics.merge: gauges" merge_gauges;
    tc "metrics.merge: histograms" merge_histograms;
    tc "metrics.merge: kind mismatch" merge_kind_mismatch;
    tc "metrics.merge: sketch accuracy mismatch" merge_alpha_mismatch;
  ]
