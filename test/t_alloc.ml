(* Tests for halo_alloc: the allocator interface bookkeeping, Bump,
   Jemalloc_sim and Ptmalloc_sim — including the property tests on
   allocator invariants (no overlap, alignment, free/malloc round
   trips). *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let allocators () =
  [
    ("bump", fun () -> Bump.create (Vmem.create ()));
    ("jemalloc", fun () -> Jemalloc_sim.create (Vmem.create ()));
    ("ptmalloc", fun () -> Ptmalloc_sim.create (Vmem.create ()));
  ]

(* ---------------- generic behaviours, run per allocator ---------------- *)

let basic_roundtrip (alloc : Alloc_iface.t) () =
  let a = alloc.Alloc_iface.malloc 24 in
  checkb "non-null" true (a <> Addr.null);
  checkb "8-aligned" true (Addr.is_aligned a 8);
  let stats = alloc.Alloc_iface.stats () in
  checki "one malloc" 1 stats.Alloc_iface.mallocs;
  checki "live bytes" 24 stats.Alloc_iface.live_bytes;
  alloc.Alloc_iface.free a;
  let stats = alloc.Alloc_iface.stats () in
  checki "one free" 1 stats.Alloc_iface.frees;
  checki "nothing live" 0 stats.Alloc_iface.live_bytes

let double_free_detected (alloc : Alloc_iface.t) () =
  let a = alloc.Alloc_iface.malloc 16 in
  alloc.Alloc_iface.free a;
  checkb "double free raises" true
    (try
       alloc.Alloc_iface.free a;
       false
     with Alloc_iface.Alloc_error _ -> true)

let free_null_ok (alloc : Alloc_iface.t) () =
  alloc.Alloc_iface.free Addr.null;
  checki "no frees counted" 0 (alloc.Alloc_iface.stats ()).Alloc_iface.frees

let foreign_free_detected (alloc : Alloc_iface.t) () =
  checkb "foreign pointer raises" true
    (try
       alloc.Alloc_iface.free 0xDEAD_BEE8;
       false
     with Alloc_iface.Alloc_error _ -> true)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let double_free_error_payload (alloc : Alloc_iface.t) () =
  let a = alloc.Alloc_iface.malloc 16 in
  alloc.Alloc_iface.free a;
  match alloc.Alloc_iface.free a with
  | () -> Alcotest.fail "double free not detected"
  | exception Alloc_iface.Alloc_error { allocator; op; addr; detail } ->
      Alcotest.check Alcotest.string "allocator name" alloc.Alloc_iface.name
        allocator;
      Alcotest.check Alcotest.string "operation" "free" op;
      checkb "offending address recorded" true (addr = Some a);
      checkb "detail mentions the freed state" true
        (contains (String.lowercase_ascii detail) "free")

let malloc_zero_distinct (alloc : Alloc_iface.t) () =
  let a = alloc.Alloc_iface.malloc 0 in
  let b = alloc.Alloc_iface.malloc 0 in
  checkb "distinct" true (a <> b)

let usable_size_covers (alloc : Alloc_iface.t) () =
  let a = alloc.Alloc_iface.malloc 100 in
  match alloc.Alloc_iface.usable_size a with
  | None -> Alcotest.fail "usable_size of live block"
  | Some u -> checkb "usable >= requested" true (u >= 100)

let realloc_grow_shrink (alloc : Alloc_iface.t) () =
  let a = alloc.Alloc_iface.malloc 16 in
  let b = alloc.Alloc_iface.realloc a 4000 in
  checkb "grown non-null" true (b <> Addr.null);
  let c = alloc.Alloc_iface.realloc b 8 in
  checkb "shrink keeps or moves" true (c <> Addr.null);
  alloc.Alloc_iface.free c

let realloc_null_is_malloc (alloc : Alloc_iface.t) () =
  let a = alloc.Alloc_iface.realloc Addr.null 32 in
  checkb "allocates" true (a <> Addr.null)

let no_overlap_many (alloc : Alloc_iface.t) () =
  let rng = Rng.create ~seed:99 in
  let live = ref [] in
  for _ = 1 to 500 do
    let size = 1 + Rng.int rng 300 in
    let a = alloc.Alloc_iface.malloc size in
    List.iter
      (fun (b, bs) ->
        if a < b + bs && b < a + size then
          Alcotest.failf "overlap: %s(%d) with %s(%d)" (Addr.to_hex a) size
            (Addr.to_hex b) bs)
      !live;
    live := (a, size) :: !live;
    (* free a random survivor occasionally *)
    if Rng.int rng 3 = 0 then
      match !live with
      | (b, _) :: rest ->
          alloc.Alloc_iface.free b;
          live := rest
      | [] -> ()
  done

let per_allocator name mk =
  let wrap f = fun () -> f (mk ()) () in
  [
    Alcotest.test_case (name ^ ": malloc/free roundtrip") `Quick (wrap basic_roundtrip);
    Alcotest.test_case (name ^ ": double free detected") `Quick (wrap double_free_detected);
    Alcotest.test_case (name ^ ": double-free error payload") `Quick
      (wrap double_free_error_payload);
    Alcotest.test_case (name ^ ": free(NULL) is a no-op") `Quick (wrap free_null_ok);
    Alcotest.test_case (name ^ ": foreign free detected") `Quick (wrap foreign_free_detected);
    Alcotest.test_case (name ^ ": malloc(0) unique") `Quick (wrap malloc_zero_distinct);
    Alcotest.test_case (name ^ ": usable_size covers request") `Quick (wrap usable_size_covers);
    Alcotest.test_case (name ^ ": realloc grow/shrink") `Quick (wrap realloc_grow_shrink);
    Alcotest.test_case (name ^ ": realloc(NULL)") `Quick (wrap realloc_null_is_malloc);
    Alcotest.test_case (name ^ ": 500 allocations never overlap") `Quick (wrap no_overlap_many);
  ]

(* ---------------- allocator-specific behaviours ---------------- *)

let jemalloc_size_segregation () =
  let alloc = Jemalloc_sim.create (Vmem.create ()) in
  (* Same-class allocations are contiguous at class spacing. *)
  let a = alloc.Alloc_iface.malloc 24 in
  let b = alloc.Alloc_iface.malloc 24 in
  checki "32-byte class spacing" 32 (b - a);
  (* A different class goes to a different run. *)
  let c = alloc.Alloc_iface.malloc 100 in
  checkb "different run" true (abs (c - b) > 32)

let jemalloc_lifo_reuse () =
  let alloc = Jemalloc_sim.create (Vmem.create ()) in
  let a = alloc.Alloc_iface.malloc 24 in
  let _b = alloc.Alloc_iface.malloc 24 in
  alloc.Alloc_iface.free a;
  let c = alloc.Alloc_iface.malloc 24 in
  checki "freed slot reused LIFO" a c

let jemalloc_large_dedicated () =
  let v = Vmem.create () in
  let alloc = Jemalloc_sim.create v in
  let before = Vmem.mapped_bytes v in
  let a = alloc.Alloc_iface.malloc (1 lsl 20) in
  checkb "page aligned" true (Addr.is_aligned a 4096);
  checkb "dedicated mapping" true (Vmem.mapped_bytes v >= before + (1 lsl 20));
  alloc.Alloc_iface.free a;
  checkb "unmapped on free" true (Vmem.mapped_bytes v < before + (1 lsl 20))

let jemalloc_figure1_layout () =
  (* Figure 1: a(4) b(4) c(16) d(32): a and b co-located in one class;
     c and d in their own classes. *)
  let alloc = Jemalloc_sim.create (Vmem.create ()) in
  let a = alloc.Alloc_iface.malloc 4 in
  let b = alloc.Alloc_iface.malloc 4 in
  let c = alloc.Alloc_iface.malloc 16 in
  let d = alloc.Alloc_iface.malloc 32 in
  checki "a,b adjacent in smallest class" 16 (b - a);
  checkb "c in its own region" true (abs (c - b) >= 16);
  checkb "d in its own region" true (abs (d - c) >= 32)

let ptmalloc_header_spacing () =
  let alloc = Ptmalloc_sim.create (Vmem.create ()) in
  let a = alloc.Alloc_iface.malloc 32 in
  let b = alloc.Alloc_iface.malloc 32 in
  checki "48-byte spacing (16B header, 16-aligned)" 48 (b - a)

let ptmalloc_best_fit () =
  let alloc = Ptmalloc_sim.create (Vmem.create ()) in
  let small = alloc.Alloc_iface.malloc 32 in
  let _spacer1 = alloc.Alloc_iface.malloc 32 in
  let big = alloc.Alloc_iface.malloc 200 in
  let _spacer2 = alloc.Alloc_iface.malloc 32 in
  alloc.Alloc_iface.free small;
  alloc.Alloc_iface.free big;
  (* A 200-byte request should take the 200-byte hole, not the 32-byte
     one or the top. *)
  let re = alloc.Alloc_iface.malloc 200 in
  checki "best fit reuses matching hole" big re;
  (* A 16-byte request takes the smaller hole. *)
  let re2 = alloc.Alloc_iface.malloc 16 in
  checki "small request takes small hole" small re2

let ptmalloc_coalescing () =
  let alloc = Ptmalloc_sim.create (Vmem.create ()) in
  let a = alloc.Alloc_iface.malloc 32 in
  let b = alloc.Alloc_iface.malloc 32 in
  let _guard = alloc.Alloc_iface.malloc 32 in
  alloc.Alloc_iface.free a;
  alloc.Alloc_iface.free b;
  (* Coalesced hole (2 x 48 chunk bytes) satisfies one 80-byte request at
     a's position. *)
  let c = alloc.Alloc_iface.malloc 80 in
  checki "coalesced neighbours reused" a c

let ptmalloc_top_release () =
  let alloc = Ptmalloc_sim.create (Vmem.create ()) in
  let a = alloc.Alloc_iface.malloc 64 in
  alloc.Alloc_iface.free a;
  (* After freeing the only (top) block, the next allocation reuses the
     same address: the heap shrank. *)
  let b = alloc.Alloc_iface.malloc 64 in
  checki "top reclaimed" a b

let bump_is_monotone () =
  let alloc = Bump.create (Vmem.create ()) in
  let prev = ref 0 in
  for _ = 1 to 50 do
    let a = alloc.Alloc_iface.malloc 24 in
    checkb "monotone addresses" true (a > !prev);
    prev := a
  done

let bump_contiguity () =
  let alloc = Bump.create (Vmem.create ()) in
  let a = alloc.Alloc_iface.malloc 24 in
  let b = alloc.Alloc_iface.malloc 8 in
  checki "8-aligned packing" 24 (b - a)

(* ---------------- qcheck: allocator invariants ---------------- *)

(* A random trace of mallocs and frees; checks alignment, non-overlap and
   stats consistency at every step. *)
let alloc_trace_prop name mk =
  QCheck2.Test.make
    ~name:(name ^ ": random malloc/free trace maintains invariants")
    ~count:60
    QCheck2.Gen.(list_size (int_range 1 120) (pair (int_range 0 600) bool))
    (fun ops ->
      let alloc : Alloc_iface.t = mk () in
      let live = Hashtbl.create 64 in
      let order = ref [] in
      let expected_live_bytes = ref 0 in
      List.for_all
        (fun (size, do_free) ->
          if do_free && !order <> [] then begin
            match !order with
            | a :: rest ->
                order := rest;
                let sz = Hashtbl.find live a in
                Hashtbl.remove live a;
                alloc.Alloc_iface.free a;
                expected_live_bytes := !expected_live_bytes - sz;
                true
            | [] -> true
          end
          else begin
            let a = alloc.Alloc_iface.malloc size in
            let ok_align = Addr.is_aligned a 8 in
            let ok_disjoint =
              Hashtbl.fold
                (fun b bs acc -> acc && not (a < b + max bs 1 && b < a + max size 1))
                live true
            in
            Hashtbl.replace live a size;
            order := a :: !order;
            expected_live_bytes := !expected_live_bytes + size;
            let stats = alloc.Alloc_iface.stats () in
            ok_align && ok_disjoint
            && stats.Alloc_iface.live_bytes = !expected_live_bytes
          end)
        ops)

(* The corrupt-chunk-header path cannot be reached through the public
   surface (it requires live-table and chunk-map disagreement), so the
   rendering contract is pinned against the shared raise helper: every
   component an operator needs — allocator, operation, address, detail —
   must survive into [Printexc.to_string]. *)
let corrupt_header_message () =
  let msg =
    try
      Alloc_iface.alloc_error ~allocator:"ptmalloc-sim" ~op:"free"
        ~addr:0xDEAD08 "corrupt chunk header"
    with e -> Printexc.to_string e
  in
  checkb "names the allocator" true (contains msg "ptmalloc-sim");
  checkb "names the operation" true (contains msg "free");
  checkb "carries the address" true (contains msg (Addr.to_hex 0xDEAD08));
  checkb "carries the detail" true (contains msg "corrupt chunk header")

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    (List.map (fun (name, mk) -> alloc_trace_prop name mk) (allocators ()))

let suite =
  List.concat_map (fun (name, mk) -> per_allocator name mk) (allocators ())
  @ [
      Alcotest.test_case "jemalloc: size segregation" `Quick jemalloc_size_segregation;
      Alcotest.test_case "jemalloc: LIFO reuse" `Quick jemalloc_lifo_reuse;
      Alcotest.test_case "jemalloc: large allocations dedicated" `Quick jemalloc_large_dedicated;
      Alcotest.test_case "jemalloc: Figure 1 layout" `Quick jemalloc_figure1_layout;
      Alcotest.test_case "ptmalloc: boundary-tag spacing" `Quick ptmalloc_header_spacing;
      Alcotest.test_case "ptmalloc: best fit" `Quick ptmalloc_best_fit;
      Alcotest.test_case "ptmalloc: coalescing" `Quick ptmalloc_coalescing;
      Alcotest.test_case "ptmalloc: top release" `Quick ptmalloc_top_release;
      Alcotest.test_case "bump: monotone" `Quick bump_is_monotone;
      Alcotest.test_case "bump: contiguity" `Quick bump_contiguity;
      Alcotest.test_case "alloc_error: corrupt-header rendering" `Quick
        corrupt_header_message;
    ]
  @ qsuite
