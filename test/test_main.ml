(* The aggregate test runner: one alcotest suite per library.

   `dune runtest` runs everything, including the slower end-to-end
   experiment shape checks (registered `Slow`; skip with
   ALCOTEST_QUICK_TESTS=1 when iterating). *)

let () =
  Alcotest.run "halo"
    [
      ("util", T_util.suite);
      ("obs", T_obs.suite);
      ("telemetry", T_telemetry.suite);
      ("par", T_par.suite);
      ("mem", T_mem.suite);
      ("alloc", T_alloc.suite);
      ("cachesim", T_cachesim.suite);
      ("vm", T_vm.suite);
      ("trace", T_trace.suite);
      ("profile", T_profile.suite);
      ("core", T_core.suite);
      ("store", T_store.suite);
      ("serve", T_serve.suite);
      ("fuzz", T_fuzz.suite);
      ("hds", T_hds.suite);
      ("workloads", T_workloads.suite);
      ("traffic", T_traffic.suite);
      ("extensions", T_extensions.suite);
      ("reference-models", T_reference_models.suite);
      ("experiments", T_experiments.suite);
    ]
