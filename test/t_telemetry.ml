(* Tests for the offline telemetry analysis (Telemetry) and the bench
   regression gate (Bench_check). *)

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checks = check Alcotest.string
let checkf msg = check (Alcotest.float 1e-9) msg

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go from =
    from + n <= h
    && (String.sub hay from n = needle || go (from + 1))
  in
  go 0

(* ---------------- Telemetry: trace analysis ---------------- *)

(* A trace is produced the way the CLI produces one: run spans through a
   real Obs with a JSONL sink, then re-read the lines. *)
let recorded_trace () =
  let clock = ref 0.0 in
  let advance dt = clock := !clock +. dt in
  let buf = Buffer.create 1024 in
  let obs = Obs.create ~clock:(fun () -> !clock) ~sink:(Trace.to_buffer buf) () in
  let o = Some obs in
  Obs.span o "run" (fun () ->
      Obs.span o "profile"
        ~attrs:[ ("stage", Json.String "profile") ]
        (fun () ->
          advance 0.6;
          Obs.observe o "profile.accesses" 100.0;
          Obs.observe o "profile.accesses" 300.0);
      Obs.span o "rewrite"
        ~attrs:[ ("stage", Json.String "rewrite") ]
        (fun () -> advance 0.4);
      Obs.count o "events.total" 7);
  Obs.finish obs;
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> l <> "")

let parse_roundtrip () =
  let t =
    match Telemetry.of_lines (recorded_trace ()) with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  checki "three spans" 3 (List.length t.Telemetry.spans);
  let run =
    List.find (fun s -> s.Telemetry.r_name = "run") t.Telemetry.spans
  and prof =
    List.find (fun s -> s.Telemetry.r_name = "profile") t.Telemetry.spans
  in
  checkb "root has no parent" true (run.Telemetry.r_parent = None);
  checkb "stage attr recovered" true
    (prof.Telemetry.r_stage = Some "profile");
  checkb "child links to root" true
    (prof.Telemetry.r_parent = Some run.Telemetry.r_id);
  checkf "durations preserved" 1.0 run.Telemetry.r_dur_s;
  (* Summaries decode back into typed metric values. *)
  (match List.assoc "events.total" t.Telemetry.metrics with
  | Metrics.Counter n -> checki "counter summary" 7 n
  | _ -> Alcotest.fail "expected counter");
  match List.assoc "profile.accesses" t.Telemetry.metrics with
  | Metrics.Histogram { count; _ } as v ->
      checki "histogram summary" 2 count;
      checkb "quantiles re-derive from the decoded sketch" true
        (Option.get (Metrics.value_quantile v 1.0) > 200.0)
  | _ -> Alcotest.fail "expected histogram"

let malformed_lines_are_located () =
  match
    Telemetry.of_lines
      [
        "{\"type\":\"span\",\"id\":0,\"name\":\"a\",\"depth\":0,\
         \"start_s\":0.0,\"dur_s\":1.0}";
        "not json";
      ]
  with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e -> checkb "error names the line" true (contains "line 2" e)

let report_renders () =
  let t = Result.get_ok (Telemetry.of_lines (recorded_trace ())) in
  let report = Telemetry.report_string t in
  List.iter
    (fun needle ->
      checkb (Printf.sprintf "report mentions %s" needle) true
        (contains needle report))
    [ "profile"; "rewrite"; "events.total"; "self" ];
  (* Self time: run spends 0 outside its children, profile 0.6, rewrite
     0.4 — the stage table must not double-count nested time. *)
  let stage = Table.render (Telemetry.stage_table t) in
  checkb "stage table renders" true (String.length stage > 0)

let diff_flags_regressions () =
  let t_of lines = Result.get_ok (Telemetry.of_lines lines) in
  let summary name fields =
    Printf.sprintf
      "{\"type\":\"summary\",\"name\":%S,%s,\"seq\":0}" name fields
  in
  let a = t_of [ summary "hits" "\"kind\":\"counter\",\"value\":100" ] in
  let b = t_of [ summary "hits" "\"kind\":\"counter\",\"value\":125" ] in
  (match Telemetry.diff ~threshold:0.10 a b with
  | [ row ] ->
      checks "named" "hits" row.Telemetry.d_name;
      checkf "delta" 0.25 (Option.get row.Telemetry.d_delta);
      checkb "beyond threshold" true row.Telemetry.d_regressed
  | rows ->
      Alcotest.fail (Printf.sprintf "expected one row, got %d" (List.length rows)));
  (match Telemetry.diff ~threshold:0.30 a b with
  | [ row ] -> checkb "within a looser threshold" false row.Telemetry.d_regressed
  | _ -> Alcotest.fail "expected one row");
  let _, regressed = Telemetry.diff_table ~threshold:0.10 a b in
  checkb "table verdict matches" true regressed;
  (* A metric present on one side only never crashes the diff. *)
  let empty = t_of [] in
  match Telemetry.diff a empty with
  | [ row ] -> checkb "missing side is None" true (row.Telemetry.d_after = None)
  | _ -> Alcotest.fail "expected one row"

(* ---------------- Bench_check: the regression gate ---------------- *)

let v2_baseline_json =
  {|{
  "date": "2026-08-07",
  "hotpath": [
    {"label": "baseline", "workload": "health", "config": "interp",
     "events": 1000, "events_per_sec": 10.0e6},
    {"label": "optimised", "workload": "health", "config": "interp",
     "events": 1000, "events_per_sec": 40.0e6},
    {"label": "baseline", "workload": "leela", "config": "simulate",
     "events": 500, "events_per_sec": 5.0e6}
  ],
  "suites": [
    {"name": "hotpath", "label": "baseline", "wall_s": 10.0,
     "config": {"jobs": 4, "seed": 2, "plan_cache": false}},
    {"name": "hotpath", "label": "baseline", "wall_s": 8.0,
     "config": {"jobs": 4, "seed": 2, "plan_cache": false}}
  ]
}|}

let v1_baseline_json =
  (* The committed 2026-08-07 shape: no labels, no per-suite config. *)
  {|{
  "date": "2026-08-07",
  "hotpath": [
    {"workload": "health", "config": "interp", "events_per_sec": 12.0e6}
  ],
  "suites": [ {"name": "hotpath", "wall_s": 9.0} ]
}|}

let load_baseline text =
  match Result.bind (Json.of_string text) Bench_check.of_json with
  | Ok b -> b
  | Error e -> Alcotest.fail e

let parses_both_schemas () =
  let v2 = load_baseline v2_baseline_json in
  checki "v2 entries" 3 (List.length v2.Bench_check.b_entries);
  checki "v2 suites" 2 (List.length v2.Bench_check.b_suites);
  checkb "v2 suite carries jobs" true
    (List.for_all
       (fun s -> s.Bench_check.s_jobs = Some 4)
       v2.Bench_check.b_suites);
  let v1 = load_baseline v1_baseline_json in
  (match v1.Bench_check.b_entries with
  | [ e ] ->
      checks "label defaults" "baseline" e.Bench_check.e_label;
      checkb "throughput kept" true (e.Bench_check.e_events_per_s = Some 12.0e6)
  | _ -> Alcotest.fail "expected one entry");
  match v1.Bench_check.b_suites with
  | [ s ] ->
      checkb "no label on v1 suites" true (s.Bench_check.s_label = None);
      checkb "no jobs on v1 suites" true (s.Bench_check.s_jobs = None)
  | _ -> Alcotest.fail "expected one suite"

let throughput_bar_is_best_recorded () =
  let b = load_baseline v2_baseline_json in
  (* health/interp appears at 10M and 40M: the bar is the max. *)
  match
    Bench_check.check_throughput b
      [ ("health", "interp", 39.0e6); ("leela", "simulate", 6.0e6);
        ("nosuch", "interp", 1.0) ]
  with
  | [ health; leela; nosuch ] ->
      checks "keyed" "health/interp" health.Bench_check.v_key;
      checkf "bar is the best recorded" 40.0e6 health.Bench_check.v_baseline;
      checkb "2.5% below best is within threshold" false
        health.Bench_check.v_regressed;
      checkb "faster than baseline is fine" false leela.Bench_check.v_regressed;
      checkb "faster has positive delta" true (leela.Bench_check.v_delta > 0.0);
      (* A key the baseline has never seen surfaces as a warning, never a
         regression — a freshly landed suite gates before its rows exist. *)
      checkb "unmatched row warns" true
        (nosuch.Bench_check.v_status = Bench_check.No_baseline);
      checkb "unmatched row never regresses" false nosuch.Bench_check.v_regressed;
      checkb "any_regressed ignores warnings" false
        (Bench_check.any_regressed [ nosuch ]);
      (match Bench_check.warnings [ health; leela; nosuch ] with
      | [ "nosuch/interp" ] -> ()
      | w ->
          Alcotest.fail
            (Printf.sprintf "expected one warning key, got [%s]"
               (String.concat "; " w)))
  | rows ->
      Alcotest.fail
        (Printf.sprintf "expected a verdict per row, got %d" (List.length rows))

let throughput_regression_detected () =
  let b = load_baseline v2_baseline_json in
  match
    Bench_check.check_throughput ~threshold:0.10 b [ ("health", "interp", 20.0e6) ]
  with
  | [ v ] ->
      checkb "half the best regresses" true v.Bench_check.v_regressed;
      checkf "delta sign-normalised (negative = slower)" (-0.5)
        v.Bench_check.v_delta;
      checkb "any_regressed agrees" true (Bench_check.any_regressed [ v ])
  | _ -> Alcotest.fail "expected one verdict"

let wall_like_for_like () =
  let b = load_baseline v2_baseline_json in
  (* Matching label+jobs: bar is the fastest wall (8s). *)
  (match
     Bench_check.check_wall b ~label:"baseline" ~jobs:4 [ ("hotpath", 8.5) ]
   with
  | [ v ] ->
      checkf "bar is the fastest recorded wall" 8.0 v.Bench_check.v_baseline;
      checkb "6% slower passes at 10%" false v.Bench_check.v_regressed
  | _ -> Alcotest.fail "expected one verdict");
  (match
     Bench_check.check_wall b ~label:"baseline" ~jobs:4 [ ("hotpath", 10.0) ]
   with
  | [ v ] -> checkb "25% slower fails" true v.Bench_check.v_regressed
  | _ -> Alcotest.fail "expected one verdict");
  (* Different jobs, different label, or a pre-v2 file: no comparable
     bar, so the row surfaces as a No_baseline warning and cannot fail
     the gate. *)
  let warns verdicts =
    List.length verdicts = 1
    && Bench_check.warnings verdicts = [ "hotpath" ]
    && not (Bench_check.any_regressed verdicts)
  in
  checkb "jobs mismatch contributes no bar" true
    (warns (Bench_check.check_wall b ~label:"baseline" ~jobs:8 [ ("hotpath", 99.0) ]));
  checkb "label mismatch contributes no bar" true
    (warns
       (Bench_check.check_wall b ~label:"optimised" ~jobs:4 [ ("hotpath", 99.0) ]));
  let v1 = load_baseline v1_baseline_json in
  checkb "v1 files contribute no wall bar" true
    (warns
       (Bench_check.check_wall v1 ~label:"baseline" ~jobs:4 [ ("hotpath", 99.0) ]))

let verdict_table_renders () =
  let b = load_baseline v2_baseline_json in
  let verdicts =
    Bench_check.check_throughput ~threshold:0.10 b
      [ ("health", "interp", 20.0e6); ("leela", "simulate", 6.0e6) ]
  in
  let rendered = Table.render (Bench_check.table ~title:"gate" verdicts) in
  checkb "flags the regression" true (contains "REGRESSED" rendered);
  checkb "passes the healthy row" true (contains "ok" rendered)

let committed_baseline_loads () =
  (* The artifact the CI gate runs against must stay parseable. Under
     `dune runtest` the cwd is _build/default/test; when the binary is
     run from the repo root the artifact sits beside it. *)
  let path =
    if Sys.file_exists "../BENCH_2026-08-07.json" then "../BENCH_2026-08-07.json"
    else "BENCH_2026-08-07.json"
  in
  match Bench_check.load path with
  | Error e -> Alcotest.fail e
  | Ok b ->
      checkb "has throughput entries" true (List.length b.Bench_check.b_entries > 0);
      checkb "every entry keyed" true
        (List.for_all
           (fun e ->
             e.Bench_check.e_workload <> "" && e.Bench_check.e_config <> "")
           b.Bench_check.b_entries)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "telemetry: JSONL round-trip" parse_roundtrip;
    tc "telemetry: malformed lines located" malformed_lines_are_located;
    tc "telemetry: report renders" report_renders;
    tc "telemetry: diff thresholds" diff_flags_regressions;
    tc "bench_check: reads v1 and v2 schemas" parses_both_schemas;
    tc "bench_check: bar is best recorded" throughput_bar_is_best_recorded;
    tc "bench_check: regression detected" throughput_regression_detected;
    tc "bench_check: wall compared like-for-like" wall_like_for_like;
    tc "bench_check: verdict table renders" verdict_table_renders;
    tc "bench_check: committed baseline loads" committed_baseline_loads;
  ]
